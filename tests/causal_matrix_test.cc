#include <gtest/gtest.h>

#include <cmath>

#include "causal/acyclicity.h"
#include "causal/dense.h"
#include "causal/matrix_exp.h"

namespace causer::causal {
namespace {

TEST(DenseTest, MultiplyKnownValues) {
  Dense a(2, 2), b(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  Dense c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
}

TEST(DenseTest, TransposeTraceNormHadamard) {
  Dense a(2, 3);
  a(0, 2) = 5;
  Dense t = a.Transposed();
  EXPECT_DOUBLE_EQ(t(2, 0), 5);

  Dense sq(2, 2);
  sq(0, 0) = 1; sq(1, 1) = 4;
  EXPECT_DOUBLE_EQ(sq.Trace(), 5);
  EXPECT_DOUBLE_EQ(sq.MaxAbs(), 4);
  EXPECT_DOUBLE_EQ(sq.FrobeniusNorm(), std::sqrt(17.0));

  Dense h = sq.Hadamard(sq);
  EXPECT_DOUBLE_EQ(h(1, 1), 16);
  EXPECT_DOUBLE_EQ(h(0, 1), 0);
}

TEST(DenseTest, IdentityAndScale) {
  Dense eye = Dense::Identity(3);
  EXPECT_DOUBLE_EQ(eye.Trace(), 3);
  eye.Scale(2.0);
  EXPECT_DOUBLE_EQ(eye(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(eye(0, 1), 0.0);
}

TEST(MatrixExpTest, ZeroMatrixGivesIdentity) {
  Dense a(4, 4);
  Dense e = MatrixExponential(a);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      EXPECT_NEAR(e(i, j), i == j ? 1.0 : 0.0, 1e-12);
}

TEST(MatrixExpTest, DiagonalMatrix) {
  Dense a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = -2.0;
  Dense e = MatrixExponential(a);
  EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-10);
  EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-10);
  EXPECT_NEAR(e(0, 1), 0.0, 1e-12);
}

TEST(MatrixExpTest, NilpotentMatrixExact) {
  // [[0, a], [0, 0]] has exp = I + A exactly.
  Dense a(2, 2);
  a(0, 1) = 3.0;
  Dense e = MatrixExponential(a);
  EXPECT_NEAR(e(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(e(0, 1), 3.0, 1e-12);
  EXPECT_NEAR(e(1, 0), 0.0, 1e-12);
  EXPECT_NEAR(e(1, 1), 1.0, 1e-12);
}

TEST(MatrixExpTest, KnownRotationLikeMatrix) {
  // A = [[0, -t], [t, 0]] -> exp(A) = [[cos t, -sin t], [sin t, cos t]].
  const double t = 0.8;
  Dense a(2, 2);
  a(0, 1) = -t;
  a(1, 0) = t;
  Dense e = MatrixExponential(a);
  EXPECT_NEAR(e(0, 0), std::cos(t), 1e-10);
  EXPECT_NEAR(e(0, 1), -std::sin(t), 1e-10);
  EXPECT_NEAR(e(1, 0), std::sin(t), 1e-10);
  EXPECT_NEAR(e(1, 1), std::cos(t), 1e-10);
}

TEST(MatrixExpTest, LargeNormUsesScalingSquaring) {
  Dense a(1, 1);
  a(0, 0) = 10.0;
  EXPECT_NEAR(MatrixExponential(a)(0, 0), std::exp(10.0),
              std::exp(10.0) * 1e-10);
}

TEST(AcyclicityTest, DagHasZeroResidual) {
  // Chain 0 -> 1 -> 2.
  Dense w(3, 3);
  w(0, 1) = 0.9;
  w(1, 2) = -0.7;
  EXPECT_NEAR(AcyclicityValue(w), 0.0, 1e-10);
}

TEST(AcyclicityTest, EmptyGraphZero) {
  Dense w(5, 5);
  EXPECT_NEAR(AcyclicityValue(w), 0.0, 1e-12);
}

TEST(AcyclicityTest, TwoCyclePositive) {
  Dense w(2, 2);
  w(0, 1) = 1.0;
  w(1, 0) = 1.0;
  // trace(e^{S}) with S = [[0,1],[1,0]] = 2 cosh(1); h = 2cosh(1) - 2.
  EXPECT_NEAR(AcyclicityValue(w), 2.0 * std::cosh(1.0) - 2.0, 1e-10);
}

TEST(AcyclicityTest, SelfLoopPositive) {
  Dense w(2, 2);
  w(0, 0) = 0.5;
  EXPECT_GT(AcyclicityValue(w), 0.0);
}

TEST(AcyclicityTest, GradientMatchesFiniteDifference) {
  Dense w(3, 3);
  w(0, 1) = 0.6;
  w(1, 2) = 0.4;
  w(2, 0) = 0.5;  // cycle
  Dense grad = AcyclicityGradient(w);
  const double eps = 1e-6;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      Dense up = w, down = w;
      up(i, j) += eps;
      down(i, j) -= eps;
      double numeric =
          (AcyclicityValue(up) - AcyclicityValue(down)) / (2 * eps);
      EXPECT_NEAR(grad(i, j), numeric, 1e-5) << i << "," << j;
    }
  }
}

TEST(AcyclicityTest, GradientZeroOnZeroMatrix) {
  Dense w(4, 4);
  Dense grad = AcyclicityGradient(w);
  EXPECT_NEAR(grad.MaxAbs(), 0.0, 1e-14);
}

TEST(AcyclicityTest, FloatBridgeAccumulatesScaledGradient) {
  std::vector<float> w = {0.0f, 0.5f, 0.5f, 0.0f};  // 2-cycle
  std::vector<float> grad(4, 1.0f);                 // pre-existing values
  double h = AcyclicityValueAndAccumulateGrad(w.data(), 2, 2.0, grad.data());
  EXPECT_GT(h, 0.0);
  // Diagonal gradient entries stay at the pre-existing 1.0 + 2 * dh/dw_ii.
  Dense wd(2, 2);
  wd(0, 1) = 0.5;
  wd(1, 0) = 0.5;
  Dense g = AcyclicityGradient(wd);
  EXPECT_NEAR(grad[1], 1.0f + 2.0 * g(0, 1), 1e-5);
  EXPECT_NEAR(grad[2], 1.0f + 2.0 * g(1, 0), 1e-5);
}

TEST(AcyclicityTest, ValueOnlyWhenGradNull) {
  std::vector<float> w = {0.0f, 1.0f, 0.0f, 0.0f};
  double h = AcyclicityValueAndAccumulateGrad(w.data(), 2, 1.0, nullptr);
  EXPECT_NEAR(h, 0.0, 1e-10);  // single edge = DAG
}

}  // namespace
}  // namespace causer::causal
