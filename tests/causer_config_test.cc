#include <gtest/gtest.h>

#include <cmath>

#include "core/trainer.h"
#include "data/generator.h"
#include "data/split.h"

// Edge-of-configuration behaviour of the Causer model: extreme epsilon,
// extreme eta, degenerate K, large update strides. Each configuration must
// train and score without numerical failure, and the limiting behaviours
// must match the model semantics.

namespace causer::core {
namespace {

const data::Dataset& TinyData() {
  static data::Dataset d = data::MakeDataset(data::TinySpec());
  return d;
}

const data::Split& TinySplit() {
  static data::Split s = data::LeaveLastOut(TinyData());
  return s;
}

CauserConfig BaseConfig() {
  CauserConfig c = DefaultCauserConfig(TinyData(), Backbone::kGru);
  c.base.embedding_dim = 8;
  c.base.hidden_dim = 8;
  c.encoder_hidden = 8;
  c.cluster_dim = 8;
  c.aux_steps_per_epoch = 3;
  return c;
}

void TrainAndCheckFinite(CauserConfig config, int epochs = 3) {
  CauserModel model(config);
  for (int e = 0; e < epochs; ++e) {
    double loss = model.TrainEpoch(TinySplit().train);
    ASSERT_TRUE(std::isfinite(loss)) << "epoch " << e;
  }
  const auto& inst = TinySplit().test[0];
  for (float s : model.ScoreAll(inst.user, inst.history)) {
    ASSERT_TRUE(std::isfinite(s));
  }
}

TEST(CauserConfigTest, EpsilonZeroKeepsEverything) {
  CauserConfig c = BaseConfig();
  c.epsilon = 0.0f;
  TrainAndCheckFinite(c);
}

TEST(CauserConfigTest, EpsilonHugeFallsBackToFullHistory) {
  CauserConfig c = BaseConfig();
  c.epsilon = 100.0f;  // nothing passes: every candidate takes the fallback
  CauserModel model(c);
  model.TrainEpoch(TinySplit().train);
  const auto& inst = TinySplit().test[0];
  auto scores = model.ScoreAll(inst.user, inst.history);
  for (float s : scores) EXPECT_TRUE(std::isfinite(s));
  // With the universal fallback the causal effects are all 1, so the
  // explanation's causal component is flat.
  auto causal_scores = model.ExplainScores(inst, inst.target_items[0],
                                           ExplainMode::kCausal);
  for (size_t t = 0; t < causal_scores.size(); ++t) {
    if (!inst.history[t].items.empty())
      EXPECT_NEAR(causal_scores[t], 1.0, 1e-5);
  }
}

TEST(CauserConfigTest, NearHardAssignmentsTrain) {
  CauserConfig c = BaseConfig();
  c.eta = 0.01f;  // near-one-hot cluster assignments
  TrainAndCheckFinite(c);
}

TEST(CauserConfigTest, NearUniformAssignmentsTrain) {
  CauserConfig c = BaseConfig();
  c.eta = 100.0f;  // near-uniform assignments dilute W toward mean(Wc)
  TrainAndCheckFinite(c);
}

TEST(CauserConfigTest, MinimumClusterCount) {
  CauserConfig c = BaseConfig();
  c.num_clusters = 2;
  TrainAndCheckFinite(c);
}

TEST(CauserConfigTest, ManyClusters) {
  CauserConfig c = BaseConfig();
  c.num_clusters = 20;  // more clusters than true structure
  TrainAndCheckFinite(c);
}

TEST(CauserConfigTest, SlowUpdateStrideLargerThanEpochs) {
  CauserConfig c = BaseConfig();
  c.w_update_every = 100;  // graph/cluster phases fire only at epoch 0
  TrainAndCheckFinite(c, 4);
}

TEST(CauserConfigTest, NoWarmup) {
  CauserConfig c = BaseConfig();
  c.graph_warmup_epochs = 0;
  TrainAndCheckFinite(c);
}

TEST(CauserConfigTest, AllAblationsTogetherStillTrain) {
  CauserConfig c = BaseConfig();
  c.use_causal = false;
  c.use_attention = false;
  c.use_clustering_loss = false;
  c.use_reconstruction_loss = false;
  TrainAndCheckFinite(c);
}

TEST(CauserConfigTest, LstmWithAblations) {
  CauserConfig c = BaseConfig();
  c.backbone = Backbone::kLstm;
  c.use_attention = false;
  TrainAndCheckFinite(c);
}

TEST(CauserConfigTest, UserEmbeddingFlagTrains) {
  CauserConfig c = BaseConfig();
  c.use_user_embedding = true;
  TrainAndCheckFinite(c);
}

TEST(CauserConfigTest, UserEmbeddingChangesScoresAcrossUsers) {
  CauserConfig c = BaseConfig();
  c.use_user_embedding = true;
  CauserModel model(c);
  for (int e = 0; e < 3; ++e) model.TrainEpoch(TinySplit().train);
  std::vector<data::Step> history = {{{1}, {-1}, {-1}}, {{2}, {-1}, {-1}}};
  auto a = model.ScoreAll(0, history);
  auto b = model.ScoreAll(1, history);
  EXPECT_NE(a, b) << "user conditioning should personalize scores";
}

TEST(CauserConfigTest, WithoutUserEmbeddingScoresUserInvariant) {
  CauserConfig c = BaseConfig();
  CauserModel model(c);
  model.TrainEpoch(TinySplit().train);
  std::vector<data::Step> history = {{{1}, {-1}, {-1}}, {{2}, {-1}, {-1}}};
  EXPECT_EQ(model.ScoreAll(0, history), model.ScoreAll(1, history));
}

TEST(CauserConfigTest, FreeInputEmbeddingOffIsExactlyFeatureOnly) {
  // The flag must be behaviour- and RNG-stream-neutral when off: two
  // models differing only in the (disabled) flag are bit-identical.
  CauserConfig c = BaseConfig();
  CauserModel a(c);
  CauserModel b(c);
  a.TrainEpoch(TinySplit().train);
  b.TrainEpoch(TinySplit().train);
  const auto& inst = TinySplit().test[0];
  EXPECT_EQ(a.ScoreAll(inst.user, inst.history),
            b.ScoreAll(inst.user, inst.history));
}

TEST(CauserConfigTest, FreeInputEmbeddingTrainsAndDiffers) {
  CauserConfig c = BaseConfig();
  c.use_free_input_embedding = true;
  TrainAndCheckFinite(c);
  // With the flag on, two items with identical features but different
  // free embeddings produce different step inputs: verify scores change
  // relative to the feature-only model after training.
  CauserConfig plain = BaseConfig();
  CauserModel with_flag(c), without_flag(plain);
  with_flag.TrainEpoch(TinySplit().train);
  without_flag.TrainEpoch(TinySplit().train);
  const auto& inst = TinySplit().test[0];
  EXPECT_NE(with_flag.ScoreAll(inst.user, inst.history),
            without_flag.ScoreAll(inst.user, inst.history));
}

TEST(CauserConfigTest, GraphDataWeightZeroStillTrains) {
  CauserConfig c = BaseConfig();
  c.graph_data_weight = 0.0f;  // penalties only: graph drifts to empty DAG
  TrainAndCheckFinite(c, 4);
}

}  // namespace
}  // namespace causer::core
