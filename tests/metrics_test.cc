#include "common/metrics.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "testing_json.h"

namespace causer::metrics {
namespace {

/// Every test runs with recording enabled and a zeroed registry, and
/// leaves recording disabled (the process default) behind.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(true);
    ResetForTest();
  }
  void TearDown() override { SetEnabled(false); }
};

/// Runs `fn(t)` on `threads` plain threads and joins them.
void OnThreads(int threads, const std::function<void(int)>& fn) {
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) workers.emplace_back(fn, t);
  for (auto& w : workers) w.join();
}

TEST_F(MetricsTest, CounterMergesAcrossThreads) {
  Counter& c = GetCounter("test.counter", "ops", "test");
  constexpr int kAddsPerThread = 10000;
  for (int threads : {1, 2, 8}) {
    ResetForTest();
    OnThreads(threads, [&](int) {
      for (int i = 0; i < kAddsPerThread; ++i) c.Add();
    });
    EXPECT_EQ(c.Value(),
              static_cast<uint64_t>(threads) * kAddsPerThread);
  }
}

TEST_F(MetricsTest, CounterAddsArbitraryIncrements) {
  Counter& c = GetCounter("test.counter", "ops", "test");
  c.Add(5);
  c.Add(7);
  EXPECT_EQ(c.Value(), 12u);
}

TEST_F(MetricsTest, GaugeLastWriteWins) {
  Gauge& g = GetGauge("test.gauge", "value", "test");
  g.Set(1.5);
  g.Set(-2.25);
  EXPECT_EQ(g.Value(), -2.25);
}

TEST_F(MetricsTest, HistogramBucketsCountAndSum) {
  Histogram& h =
      GetHistogram("test.histogram", "seconds", "test", {1.0, 10.0, 100.0});
  h.Observe(0.5);    // bucket 0 (v <= 1)
  h.Observe(1.0);    // bucket 0 (inclusive upper bound)
  h.Observe(5.0);    // bucket 1
  h.Observe(1000.0); // overflow
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_DOUBLE_EQ(h.Sum(), 1006.5);
  EXPECT_EQ(h.BucketCounts(), (std::vector<uint64_t>{2, 1, 0, 1}));
}

TEST_F(MetricsTest, HistogramMergesAcrossThreads) {
  Histogram& h =
      GetHistogram("test.histogram", "seconds", "test", {1.0, 10.0, 100.0});
  constexpr int kPerThread = 3000;
  for (int threads : {1, 2, 8}) {
    ResetForTest();
    OnThreads(threads, [&](int) {
      for (int i = 0; i < kPerThread; ++i) h.Observe(0.5);
      for (int i = 0; i < kPerThread; ++i) h.Observe(50.0);
    });
    const uint64_t n = static_cast<uint64_t>(threads) * kPerThread;
    EXPECT_EQ(h.Count(), 2 * n);
    EXPECT_DOUBLE_EQ(h.Sum(), static_cast<double>(n) * 50.5);
    EXPECT_EQ(h.BucketCounts(), (std::vector<uint64_t>{n, 0, n, 0}));
  }
}

TEST_F(MetricsTest, DisabledRecordingIsANoOp) {
  Counter& c = GetCounter("test.counter", "ops", "test");
  Gauge& g = GetGauge("test.gauge", "value", "test");
  Histogram& h =
      GetHistogram("test.histogram", "seconds", "test", {1.0, 10.0, 100.0});
  SetEnabled(false);
  c.Add();
  g.Set(3.0);
  h.Observe(0.5);
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(g.Value(), 0.0);
  EXPECT_EQ(h.Count(), 0u);
  // Re-enabling resumes recording on the same instruments.
  SetEnabled(true);
  c.Add();
  EXPECT_EQ(c.Value(), 1u);
}

TEST_F(MetricsTest, RegistrationIsIdempotentByName) {
  Counter& a = GetCounter("test.counter", "ops", "test");
  Counter& b = GetCounter("test.counter", "ops", "test");
  EXPECT_EQ(&a, &b);
}

TEST_F(MetricsTest, ExponentialBucketsShape) {
  auto b = ExponentialBuckets(1e-3, 10.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1e-3);
  EXPECT_DOUBLE_EQ(b[1], 1e-2);
  EXPECT_DOUBLE_EQ(b[2], 1e-1);
  EXPECT_DOUBLE_EQ(b[3], 1.0);
}

TEST_F(MetricsTest, SnapshotIsSortedAndDeterministic) {
  GetGauge("test.zz", "value", "test").Set(1.0);
  GetCounter("test.aa", "ops", "test").Add(3);
  OnThreads(4, [&](int) { GetCounter("test.aa", "ops", "test").Add(); });

  auto first = Snapshot();
  auto second = Snapshot();
  // No interleaved updates: byte-identical snapshots, independent of how
  // many threads produced the values.
  EXPECT_EQ(first, second);
  ASSERT_GE(first.size(), 2u);
  for (size_t i = 1; i < first.size(); ++i) {
    EXPECT_LT(first[i - 1].name, first[i].name);
  }
}

TEST_F(MetricsTest, SnapshotCarriesMergedState) {
  GetCounter("test.counter", "ops", "test").Add(4);
  GetHistogram("test.histogram", "seconds", "test", {1.0, 10.0, 100.0})
      .Observe(5.0);
  for (const auto& entry : Snapshot()) {
    if (entry.name == "test.counter") {
      EXPECT_EQ(entry.type, MetricType::kCounter);
      EXPECT_EQ(entry.count, 4u);
      EXPECT_EQ(entry.unit, "ops");
    }
    if (entry.name == "test.histogram") {
      EXPECT_EQ(entry.type, MetricType::kHistogram);
      EXPECT_EQ(entry.count, 1u);
      EXPECT_DOUBLE_EQ(entry.value, 5.0);
      EXPECT_EQ(entry.bounds, (std::vector<double>{1.0, 10.0, 100.0}));
      EXPECT_EQ(entry.bucket_counts, (std::vector<uint64_t>{0, 1, 0, 0}));
    }
  }
}

TEST_F(MetricsTest, SnapshotJsonIsWellFormed) {
  GetCounter("test.counter", "ops", "test \"quoted\" help").Add(2);
  GetGauge("test.gauge", "value", "test").Set(-0.5);
  GetHistogram("test.histogram", "seconds", "test", {1.0, 10.0, 100.0})
      .Observe(2.0);
  std::string json = SnapshotJson();
  EXPECT_TRUE(causer::testing::IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("test.histogram"), std::string::npos);
}

TEST_F(MetricsTest, SnapshotTextMentionsEveryMetric) {
  GetCounter("test.counter", "ops", "test").Add();
  GetGauge("test.gauge", "value", "test").Set(1.0);
  std::string text = SnapshotText();
  EXPECT_NE(text.find("test.counter"), std::string::npos);
  EXPECT_NE(text.find("test.gauge"), std::string::npos);
}

}  // namespace
}  // namespace causer::metrics
