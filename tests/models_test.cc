#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "data/generator.h"
#include "data/split.h"
#include "models/bpr.h"
#include "models/fpmc.h"
#include "models/gru4rec.h"
#include "models/mmsarec.h"
#include "models/narm.h"
#include "models/ncf.h"
#include "models/sasrec.h"
#include "models/stamp.h"
#include "models/vtrnn.h"

namespace causer::models {
namespace {

const data::Dataset& TinyData() {
  static data::Dataset d = data::MakeDataset(data::TinySpec());
  return d;
}

ModelConfig TinyConfig() {
  ModelConfig c;
  c.num_users = TinyData().num_users;
  c.num_items = TinyData().num_items;
  c.item_features = &TinyData().item_features;
  c.embedding_dim = 8;
  c.hidden_dim = 8;
  return c;
}

using Factory = std::function<std::unique_ptr<SequentialRecommender>()>;

struct NamedFactory {
  const char* label;
  Factory make;
};

const NamedFactory kFactories[] = {
    {"BPR", [] { return std::unique_ptr<SequentialRecommender>(new Bpr(TinyConfig())); }},
    {"NCF", [] { return std::unique_ptr<SequentialRecommender>(new Ncf(TinyConfig())); }},
    {"FPMC", [] { return std::unique_ptr<SequentialRecommender>(new Fpmc(TinyConfig())); }},
    {"GRU4Rec", [] { return std::unique_ptr<SequentialRecommender>(new Gru4Rec(TinyConfig())); }},
    {"NARM", [] { return std::unique_ptr<SequentialRecommender>(new Narm(TinyConfig())); }},
    {"STAMP", [] { return std::unique_ptr<SequentialRecommender>(new Stamp(TinyConfig())); }},
    {"SASRec", [] { return std::unique_ptr<SequentialRecommender>(new SasRec(TinyConfig())); }},
    {"VTRNN", [] { return std::unique_ptr<SequentialRecommender>(new Vtrnn(TinyConfig())); }},
    {"MMSARec", [] { return std::unique_ptr<SequentialRecommender>(new MmsaRec(TinyConfig())); }},
};

class AllModelsTest : public ::testing::TestWithParam<NamedFactory> {};

TEST_P(AllModelsTest, NameMatches) {
  auto model = GetParam().make();
  EXPECT_EQ(model->name(), GetParam().label);
}

TEST_P(AllModelsTest, HasParameters) {
  auto model = GetParam().make();
  EXPECT_GT(model->NumParameters(), 100);
}

TEST_P(AllModelsTest, ScoreAllShapeAndFinite) {
  auto model = GetParam().make();
  const auto& seq = TinyData().sequences[0];
  std::vector<data::Step> history(seq.steps.begin(), seq.steps.end() - 1);
  auto scores = model->ScoreAll(seq.user, history);
  EXPECT_EQ(static_cast<int>(scores.size()), TinyData().num_items);
  for (float s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST_P(AllModelsTest, TrainingReducesLoss) {
  auto model = GetParam().make();
  data::Split split = data::LeaveLastOut(TinyData());
  double first = model->TrainEpoch(split.train);
  double last = first;
  for (int e = 0; e < 4; ++e) last = model->TrainEpoch(split.train);
  EXPECT_LT(last, first);
}

TEST_P(AllModelsTest, FitBeatsUntrainedModel) {
  data::Split split = data::LeaveLastOut(TinyData());
  auto untrained = GetParam().make();
  double before =
      eval::Evaluate(MakeScorer(*untrained), split.test, 5).ndcg;
  auto model = GetParam().make();
  Fit(*model, split, {.max_epochs = 6, .patience = 2});
  double after = eval::Evaluate(MakeScorer(*model), split.test, 5).ndcg;
  EXPECT_GT(after, before);
}

TEST_P(AllModelsTest, ScoringDeterministicAfterTraining) {
  auto model = GetParam().make();
  data::Split split = data::LeaveLastOut(TinyData());
  model->TrainEpoch(split.train);
  const auto& inst = split.test[0];
  auto a = model->ScoreAll(inst.user, inst.history);
  auto b = model->ScoreAll(inst.user, inst.history);
  EXPECT_EQ(a, b);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, AllModelsTest, ::testing::ValuesIn(kFactories),
    [](const ::testing::TestParamInfo<NamedFactory>& info) {
      return std::string(info.param.label);
    });

TEST(SequentialModelsTest, HistoryChangesSequentialScores) {
  // Sequential models must react to the history; BPR must not.
  data::Split split = data::LeaveLastOut(TinyData());
  std::vector<data::Step> h1 = {{{1}, {-1}, {-1}}, {{2}, {-1}, {-1}}};
  std::vector<data::Step> h2 = {{{5}, {-1}, {-1}}, {{9}, {-1}, {-1}}};

  Gru4Rec gru(TinyConfig());
  gru.TrainEpoch(split.train);
  EXPECT_NE(gru.ScoreAll(0, h1), gru.ScoreAll(0, h2));

  Bpr bpr(TinyConfig());
  bpr.TrainEpoch(split.train);
  EXPECT_EQ(bpr.ScoreAll(0, h1), bpr.ScoreAll(0, h2));
}

TEST(FpmcTest, LastBasketDrivesTransition) {
  data::Split split = data::LeaveLastOut(TinyData());
  Fpmc fpmc(TinyConfig());
  for (int e = 0; e < 3; ++e) fpmc.TrainEpoch(split.train);
  std::vector<data::Step> h1 = {{{1}, {-1}, {-1}}, {{2}, {-1}, {-1}}};
  std::vector<data::Step> h2 = {{{1}, {-1}, {-1}}, {{9}, {-1}, {-1}}};
  EXPECT_NE(fpmc.ScoreAll(0, h1), fpmc.ScoreAll(0, h2));
  // FPMC is first-order Markov: only the last basket matters.
  std::vector<data::Step> h3 = {{{7}, {-1}, {-1}}, {{2}, {-1}, {-1}}};
  EXPECT_EQ(fpmc.ScoreAll(0, h1), fpmc.ScoreAll(0, h3));
}

TEST(NarmTest, AttentionWeightsFormDistribution) {
  data::Split split = data::LeaveLastOut(TinyData());
  Narm narm(TinyConfig());
  narm.TrainEpoch(split.train);
  const auto& inst = split.test[0];
  auto weights = narm.AttentionWeights(inst);
  ASSERT_EQ(weights.size(), inst.history.size());
  double total = 0;
  for (double w : weights) {
    EXPECT_GE(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 1.0, 1e-4);
}

TEST(FitTest, EarlyStoppingRespectsPatience) {
  data::Split split = data::LeaveLastOut(TinyData());
  Gru4Rec model(TinyConfig());
  FitResult r = Fit(model, split, {.max_epochs = 30, .patience = 0});
  EXPECT_LT(r.epochs_run, 30);
  EXPECT_EQ(static_cast<int>(r.epoch_losses.size()), r.epochs_run);
}

TEST(FitTest, BestValidationReported) {
  data::Split split = data::LeaveLastOut(TinyData());
  Gru4Rec model(TinyConfig());
  FitResult r = Fit(model, split, {.max_epochs = 4, .patience = 4});
  EXPECT_GE(r.best_validation_ndcg, 0.0);
  EXPECT_LE(r.best_validation_ndcg, 1.0);
  double current = eval::Evaluate(MakeScorer(model),
                                  split.validation, 5).ndcg;
  // Fit restores the best snapshot, so re-evaluating must reproduce it.
  EXPECT_NEAR(current, r.best_validation_ndcg, 1e-9);
}

TEST(TruncationTest, MaxHistoryRespected) {
  ModelConfig cfg = TinyConfig();
  cfg.max_history = 2;
  Gru4Rec model(cfg);
  // 3-step histories whose old steps differ must score identically.
  std::vector<data::Step> h1 = {{{1}, {-1}, {-1}},
                                {{2}, {-1}, {-1}},
                                {{3}, {-1}, {-1}}};
  std::vector<data::Step> h2 = {{{9}, {-1}, {-1}},
                                {{2}, {-1}, {-1}},
                                {{3}, {-1}, {-1}}};
  EXPECT_EQ(model.ScoreAll(0, h1), model.ScoreAll(0, h2));
}

}  // namespace
}  // namespace causer::models
