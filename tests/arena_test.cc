// Arena allocator tests: block management, scope semantics, and — most
// importantly — that routing the autograd tape through arenas changes no
// computed number anywhere (allocation is not arithmetic).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "data/generator.h"
#include "data/split.h"
#include "models/gru4rec.h"
#include "tensor/arena.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace causer::tensor {
namespace {

struct ThreadCountGuard {
  int saved = DefaultThreads();
  ~ThreadCountGuard() { SetDefaultThreads(saved); }
};

// Restores the global arena toggle, so a failing test cannot leak a
// disabled arena into the rest of the suite.
struct ArenaEnabledGuard {
  bool saved = ArenaEnabled();
  ~ArenaEnabledGuard() { SetArenaEnabled(saved); }
};

TEST(ArenaTest, AllocationsAreAligned) {
  Arena arena(/*first_block_bytes=*/256);
  for (size_t bytes : {1u, 3u, 63u, 64u, 65u, 1000u}) {
    void* p = arena.Allocate(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % Arena::kAlignment, 0u)
        << "unaligned allocation of " << bytes << " bytes";
  }
}

TEST(ArenaTest, ResetRewindsAndReusesStorage) {
  Arena arena(1024);
  void* first = arena.Allocate(100);
  arena.Allocate(200);
  EXPECT_GT(arena.bytes_in_use(), 0u);
  const size_t reserved = arena.bytes_reserved();
  arena.Reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // blocks retained
  // The first post-Reset allocation lands exactly where the first one did.
  EXPECT_EQ(arena.Allocate(100), first);
}

TEST(ArenaTest, GrowsGeometricallyAndOwnsAllBlocks) {
  Arena arena(128);
  std::vector<void*> ptrs;
  for (int i = 0; i < 20; ++i) ptrs.push_back(arena.Allocate(100));
  EXPECT_GT(arena.num_blocks(), 1u);
  for (void* p : ptrs) EXPECT_TRUE(arena.Owns(p));
  int heap_value = 0;
  EXPECT_FALSE(arena.Owns(&heap_value));
  // Reset keeps every block: the same sequence fits without new blocks.
  const size_t blocks = arena.num_blocks();
  arena.Reset();
  for (int i = 0; i < 20; ++i) arena.Allocate(100);
  EXPECT_EQ(arena.num_blocks(), blocks);
}

TEST(ArenaTest, OversizedAllocationGetsDedicatedBlock) {
  Arena arena(64);
  void* big = arena.Allocate(1 << 16);  // far larger than the first block
  ASSERT_NE(big, nullptr);
  EXPECT_TRUE(arena.Owns(big));
  EXPECT_EQ(reinterpret_cast<uintptr_t>(big) % Arena::kAlignment, 0u);
}

TEST(ArenaScopeTest, ActivatesThreadLocalArenaAndResetsOnExit) {
  ASSERT_EQ(ActiveArena(), nullptr);
  {
    ArenaScope scope;
    ASSERT_TRUE(scope.active());
    Arena* arena = ActiveArena();
    ASSERT_NE(arena, nullptr);
    arena->Allocate(100);
    EXPECT_GT(arena->bytes_in_use(), 0u);
    {
      // Nested scope: no arena switch, no reset on inner exit.
      ArenaScope inner;
      EXPECT_FALSE(inner.active());
      EXPECT_EQ(ActiveArena(), arena);
    }
    EXPECT_EQ(ActiveArena(), arena);
    EXPECT_GT(arena->bytes_in_use(), 0u) << "inner scope must not reset";
  }
  EXPECT_EQ(ActiveArena(), nullptr);
}

TEST(ArenaScopeTest, DisabledToggleMakesScopesNoOps) {
  ArenaEnabledGuard guard;
  SetArenaEnabled(false);
  ArenaScope scope;
  EXPECT_FALSE(scope.active());
  EXPECT_EQ(ActiveArena(), nullptr);
}

TEST(ArenaScopeTest, TapeBuffersComeFromArenaAndMatchHeapBitwise) {
  Rng heap_rng(11);
  Tensor ha = Tensor::RandomNormal(5, 7, 1.0f, heap_rng, true);
  Tensor hb = Tensor::RandomNormal(7, 3, 1.0f, heap_rng, true);
  Tensor hc = MatMul(ha, hb);
  Backward(Sum(hc));

  Rng arena_rng(11);
  ArenaScope scope;
  ASSERT_TRUE(scope.active());
  Tensor a = Tensor::RandomNormal(5, 7, 1.0f, arena_rng, true);
  Tensor b = Tensor::RandomNormal(7, 3, 1.0f, arena_rng, true);
  Tensor c = MatMul(a, b);
  Backward(Sum(c));

  Arena* arena = ActiveArena();
  EXPECT_TRUE(arena->Owns(c.data().data()));
  EXPECT_TRUE(arena->Owns(a.grad().data()));
  std::vector<float> cv(c.data().begin(), c.data().end());
  std::vector<float> hcv(hc.data().begin(), hc.data().end());
  EXPECT_EQ(cv, hcv);
  std::vector<float> ga(a.grad().begin(), a.grad().end());
  std::vector<float> hga(ha.grad().begin(), ha.grad().end());
  EXPECT_EQ(ga, hga);
}

TEST(ArenaScopeTest, CopiesMadeOutsideScopeLandOnHeap) {
  // The escape hatch the trainer relies on: copying an arena-backed buffer
  // into a container constructed outside the scope uses heap storage, so it
  // survives the scope's Reset().
  std::vector<float> escaped;
  {
    ArenaScope scope;
    ASSERT_TRUE(scope.active());
    Tensor t = Tensor::Full(4, 4, 2.5f);
    ASSERT_TRUE(ActiveArena()->Owns(t.data().data()));
    escaped.assign(t.data().begin(), t.data().end());
    EXPECT_FALSE(ActiveArena()->Owns(escaped.data()));
  }
  for (float v : escaped) EXPECT_EQ(v, 2.5f);
}

TEST(ArenaScopeTest, ParametersOutsideScopeKeepHeapGradients) {
  Rng rng(5);
  Tensor param = Tensor::RandomNormal(3, 3, 1.0f, rng, true);
  std::vector<float> first_grads;
  for (int pass = 0; pass < 2; ++pass) {
    param.ZeroGrad();
    ArenaScope scope;
    ASSERT_TRUE(scope.active());
    Tensor loss = Sum(MatMul(param, param));
    Backward(loss);
    // The gradient buffer belongs to the heap-created parameter node, not
    // the tape: it must survive the scope (and its values must repeat
    // exactly when the pass repeats, proving no reuse corruption).
    EXPECT_FALSE(ActiveArena()->Owns(param.grad().data()));
    std::vector<float> grads(param.grad().begin(), param.grad().end());
    if (pass == 0) {
      first_grads = grads;
    } else {
      EXPECT_EQ(grads, first_grads);
    }
  }
  for (float g : param.grad()) EXPECT_TRUE(g != 0.0f);
}

TEST(ArenaScopeTest, ParamSubstitutionScopeWithShadowClones) {
  // Mirrors TrainEpochBatched: shadows cloned *outside* any arena scope
  // (heap), then graphs built against them inside per-example scopes.
  Rng rng(9);
  std::vector<Tensor> params = {Tensor::RandomNormal(4, 4, 1.0f, rng, true)};
  std::vector<Tensor> shadows = {params[0].Clone(/*requires_grad=*/true)};
  std::vector<float> first_grads;
  for (int pass = 0; pass < 3; ++pass) {
    shadows[0].ZeroGrad();
    ArenaScope scope;
    ASSERT_TRUE(scope.active());
    ParamSubstitutionScope subst(params, shadows);
    Tensor loss = Sum(MatMul(params[0], params[0]));  // resolves to shadow
    Backward(loss);
    EXPECT_FALSE(ActiveArena()->Owns(shadows[0].grad().data()));
    std::vector<float> grads(shadows[0].grad().begin(),
                             shadows[0].grad().end());
    if (pass == 0) {
      bool any = false;
      for (float g : grads) any = any || g != 0.0f;
      EXPECT_TRUE(any);
      first_grads = grads;
    } else {
      EXPECT_EQ(grads, first_grads) << "pass " << pass;
    }
    for (float g : params[0].grad()) EXPECT_EQ(g, 0.0f);
  }
}

models::ModelConfig SmokeConfig(const data::Dataset& dataset, int batch_size) {
  models::ModelConfig cfg;
  cfg.num_users = dataset.num_users;
  cfg.num_items = dataset.num_items;
  cfg.item_features = &dataset.item_features;
  cfg.embedding_dim = 8;
  cfg.hidden_dim = 8;
  cfg.batch_size = batch_size;
  return cfg;
}

// Full trainer equivalence: arena on vs. off yields bit-identical epoch
// losses and parameters, in both the sequential and the batched path.
TEST(ArenaTrainingTest, SequentialEpochBitIdenticalWithArenaOnAndOff) {
  ArenaEnabledGuard guard;
  data::Dataset dataset = data::MakeDataset(data::TinySpec());
  data::Split split = data::LeaveLastOut(dataset);
  auto run = [&](bool arena_on) {
    SetArenaEnabled(arena_on);
    models::Gru4Rec model(SmokeConfig(dataset, /*batch_size=*/1));
    std::vector<double> losses;
    for (int e = 0; e < 2; ++e) losses.push_back(model.TrainEpoch(split.train));
    std::vector<float> weights;
    for (const auto& p : model.Parameters())
      weights.insert(weights.end(), p.data().begin(), p.data().end());
    return std::make_pair(losses, weights);
  };
  auto on = run(true);
  auto off = run(false);
  EXPECT_EQ(on.first, off.first);
  EXPECT_EQ(on.second, off.second);
}

TEST(ArenaTrainingTest, BatchedEpochBitIdenticalWithArenaOnAndOff) {
  ArenaEnabledGuard guard;
  ThreadCountGuard threads_guard;
  data::Dataset dataset = data::MakeDataset(data::TinySpec());
  data::Split split = data::LeaveLastOut(dataset);
  auto run = [&](bool arena_on) {
    SetArenaEnabled(arena_on);
    SetDefaultThreads(4);
    models::Gru4Rec model(SmokeConfig(dataset, /*batch_size=*/8));
    std::vector<double> losses;
    for (int e = 0; e < 2; ++e) losses.push_back(model.TrainEpoch(split.train));
    std::vector<float> weights;
    for (const auto& p : model.Parameters())
      weights.insert(weights.end(), p.data().begin(), p.data().end());
    return std::make_pair(losses, weights);
  };
  auto on = run(true);
  auto off = run(false);
  EXPECT_EQ(on.first, off.first);
  EXPECT_EQ(on.second, off.second);
}

}  // namespace
}  // namespace causer::tensor
