// Sharding equivalence suite. The kernel half proves the tentpole's
// exactness claim as a property: MatMulTopKSharded / MatMulTopKQSharded are
// bit-identical to their unsharded kernels at every shard count, thread
// count, and compiled ISA tier — including duplicate scores straddling
// shard boundaries (the (score desc, index asc) tie-break must survive the
// merge) and the int8 threshold-priming path across multiple column tiles
// per shard. The store half covers the hash-partitioned SessionStore: cap
// splitting, per-shard intrusive LRU order, pinned-entry skips, version
// stamps, and a concurrent Acquire/Evict/version-shift hammer that the CI
// TSan job runs. The engine half checks the end-to-end wiring: sharded
// config serves byte-identical responses, fp32 and int8.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cpu.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/generator.h"
#include "data/split.h"
#include "models/gru4rec.h"
#include "serve/engine.h"
#include "serve/session_store.h"
#include "tensor/kernels.h"
#include "tensor/quant.h"

namespace causer {
namespace {

using tensor::kernels::TopKEntry;

/// Restores automatic ISA selection and a single thread on test exit.
struct IsaThreadGuard {
  ~IsaThreadGuard() {
    cpu::ResetIsaForTest();
    SetDefaultThreads(1);
  }
};

/// A catalog engineered for merge-order trouble: only `distinct` unique
/// rows cycled over p, so most scores appear many times and every shard
/// boundary cuts through runs of exact ties. The tie-break (index asc)
/// must come out of the merge untouched.
std::vector<float> DuplicateHeavyMatrix(int rows, int cols, int distinct,
                                        Rng& rng) {
  std::vector<float> base(static_cast<size_t>(distinct) * cols);
  for (auto& v : base) v = static_cast<float>(rng.Uniform(-2.0, 2.0));
  std::vector<float> out(static_cast<size_t>(rows) * cols);
  for (int r = 0; r < rows; ++r) {
    std::memcpy(out.data() + static_cast<size_t>(r) * cols,
                base.data() + static_cast<size_t>(r % distinct) * cols,
                sizeof(float) * cols);
  }
  return out;
}

std::vector<float> RandomMatrix(int rows, int cols, Rng& rng) {
  std::vector<float> out(static_cast<size_t>(rows) * cols);
  for (auto& v : out) v = static_cast<float>(rng.Uniform(-3.0, 3.0));
  return out;
}

void ExpectBitIdentical(const std::vector<TopKEntry>& expected,
                        const std::vector<TopKEntry>& actual,
                        const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t e = 0; e < expected.size(); ++e) {
    ASSERT_EQ(expected[e].index, actual[e].index) << label << " entry " << e;
    ASSERT_EQ(std::memcmp(&expected[e].score, &actual[e].score,
                          sizeof(float)),
              0)
        << label << " entry " << e << " score " << expected[e].score
        << " vs " << actual[e].score;
  }
}

TEST(ShardedTopKTest, Fp32BitIdenticalAcrossShardsThreadsIsas) {
  IsaThreadGuard guard;
  Rng rng(20260815);
  const int m = 16, p = 300;
  auto b = DuplicateHeavyMatrix(p, m, /*distinct=*/7, rng);
  for (cpu::Isa isa : cpu::CompiledIsas()) {
    if (!cpu::IsaSupported(isa)) continue;
    ASSERT_TRUE(cpu::SetIsaOverride(cpu::IsaName(isa)));
    for (int threads : {1, 2, 8}) {
      SetDefaultThreads(threads);
      for (int n : {1, 4}) {  // n = 1 is the single-request serving shape
        auto a = RandomMatrix(n, m, rng);
        for (int k : {1, 5, 128}) {
          std::vector<TopKEntry> expected(static_cast<size_t>(n) * k);
          tensor::kernels::MatMulTopK(a.data(), b.data(), n, m, p, k,
                                      expected.data());
          for (int shards : {1, 2, 3, 8, 17}) {
            // 17 shards of ~18 rows with k = 128 > shard width: shards
            // return fewer than k candidates and the merge must repad.
            std::vector<TopKEntry> actual(static_cast<size_t>(n) * k,
                                          TopKEntry{7, -1.0f});
            const int used = tensor::kernels::MatMulTopKSharded(
                a.data(), b.data(), n, m, p, k, shards, actual.data());
            EXPECT_EQ(used, shards);  // all counts here are within [1, p]
            ExpectBitIdentical(expected, actual,
                               std::string(cpu::IsaName(isa)) + " t" +
                                   std::to_string(threads) + " n" +
                                   std::to_string(n) + " k" +
                                   std::to_string(k) + " S" +
                                   std::to_string(shards));
          }
        }
      }
    }
    cpu::ResetIsaForTest();
    SetDefaultThreads(1);
  }
}

TEST(ShardedTopKTest, Int8BitIdenticalIncludingThresholdPriming) {
  IsaThreadGuard guard;
  Rng rng(20260816);
  const int m = 16;
  // p = 1200 gives shards wider than one 512-column tile at small S, so
  // the quantized path's tile-0 threshold priming runs *within* shards,
  // not just in the unsharded reference.
  for (int p : {300, 1200}) {
    auto bf = DuplicateHeavyMatrix(p, m, /*distinct=*/7, rng);
    tensor::QuantizedMatrix qb;
    ASSERT_TRUE(tensor::QuantizeRows(bf.data(), p, m, &qb));
    for (cpu::Isa isa : cpu::CompiledIsas()) {
      if (!cpu::IsaSupported(isa)) continue;
      ASSERT_TRUE(cpu::SetIsaOverride(cpu::IsaName(isa)));
      for (int threads : {1, 2, 8}) {
        SetDefaultThreads(threads);
        for (int n : {1, 4}) {
          auto af = RandomMatrix(n, m, rng);
          tensor::QuantizedMatrix qa;
          ASSERT_TRUE(tensor::QuantizeRows(af.data(), n, m, &qa));
          for (int k : {1, 5, 128}) {
            std::vector<TopKEntry> expected(static_cast<size_t>(n) * k);
            tensor::kernels::MatMulTopKQ(qa.data.data(), qa.scales.data(),
                                         qb.data.data(), qb.scales.data(), n,
                                         m, p, k, expected.data());
            for (int shards : {1, 2, 3, 8, 17}) {
              std::vector<TopKEntry> actual(static_cast<size_t>(n) * k);
              const int used = tensor::kernels::MatMulTopKQSharded(
                  qa.data.data(), qa.scales.data(), qb.data.data(),
                  qb.scales.data(), n, m, p, k, shards, actual.data());
              EXPECT_EQ(used, shards);
              ExpectBitIdentical(expected, actual,
                                 std::string("int8 ") + cpu::IsaName(isa) +
                                     " t" + std::to_string(threads) + " p" +
                                     std::to_string(p) + " n" +
                                     std::to_string(n) + " k" +
                                     std::to_string(k) + " S" +
                                     std::to_string(shards));
            }
          }
        }
      }
      cpu::ResetIsaForTest();
      SetDefaultThreads(1);
    }
  }
}

TEST(ShardedTopKTest, ClampsShardCountAndFillsPerShardTimings) {
  IsaThreadGuard guard;
  Rng rng(20260817);
  const int n = 2, m = 8, p = 10, k = 3;
  auto a = RandomMatrix(n, m, rng);
  auto b = RandomMatrix(p, m, rng);
  std::vector<TopKEntry> expected(static_cast<size_t>(n) * k);
  tensor::kernels::MatMulTopK(a.data(), b.data(), n, m, p, k,
                              expected.data());
  // More shards than catalog rows: clamps to p, still exact; every
  // reported slot carries a real (non-negative) wall time.
  std::vector<TopKEntry> actual(static_cast<size_t>(n) * k);
  std::vector<double> seconds(64, -1.0);
  const int used = tensor::kernels::MatMulTopKSharded(
      a.data(), b.data(), n, m, p, k, /*shards=*/64, actual.data(),
      seconds.data());
  EXPECT_EQ(used, p);
  ExpectBitIdentical(expected, actual, "clamped to p");
  for (int s = 0; s < used; ++s) {
    EXPECT_GE(seconds[s], 0.0) << "shard " << s << " never timed";
  }
  EXPECT_EQ(seconds[used], -1.0);  // untouched past the effective count
  // shards = 1 degenerates to the unsharded kernel but still times it.
  seconds.assign(1, -1.0);
  EXPECT_EQ(tensor::kernels::MatMulTopKSharded(a.data(), b.data(), n, m, p,
                                               k, 1, actual.data(),
                                               seconds.data()),
            1);
  ExpectBitIdentical(expected, actual, "degenerate S=1");
  EXPECT_GE(seconds[0], 0.0);
  // Empty problems report zero shards and touch nothing.
  EXPECT_EQ(tensor::kernels::MatMulTopKSharded(a.data(), b.data(), 0, m, p,
                                               k, 4, actual.data()),
            0);
}

const data::Dataset& TinyData() {
  static data::Dataset d = data::MakeDataset(data::TinySpec());
  return d;
}

const data::Split& TinySplit() {
  static data::Split s = data::LeaveLastOut(TinyData());
  return s;
}

std::shared_ptr<models::Gru4Rec> TinyGru() {
  models::ModelConfig config;
  config.num_users = TinyData().num_users;
  config.num_items = TinyData().num_items;
  config.embedding_dim = 8;
  config.hidden_dim = 8;
  return std::make_shared<models::Gru4Rec>(config);
}

TEST(ShardedSessionStoreTest, ShardCountClampsToCapacity) {
  // A bounded store never hands a shard a zero (= unbounded) cap: the
  // partition count clamps to max_sessions.
  serve::SessionStore tight(2, 8);
  EXPECT_EQ(tight.shards(), 2);
  serve::SessionStore unbounded(0, 8);
  EXPECT_EQ(unbounded.shards(), 8);
  serve::SessionStore negative(5, -3);
  EXPECT_EQ(negative.shards(), 1);
  auto model = TinyGru();
  for (int u = 0; u < 64; ++u) {
    unbounded.Acquire(u, nullptr, model, 1);
  }
  EXPECT_EQ(unbounded.size(), 64);  // unbounded shards never evict
}

TEST(ShardedSessionStoreTest, GlobalCapHoldsAcrossShards) {
  auto model = TinyGru();
  serve::SessionStore store(8, 4);
  ASSERT_EQ(store.shards(), 4);
  for (int u = 0; u < 100; ++u) {
    store.Acquire(u, nullptr, model, 1);
    EXPECT_LE(store.size(), 8) << "after user " << u;
  }
  // 100 hashed users leave every 2-slot shard populated.
  EXPECT_GT(store.size(), 0);
}

TEST(ShardedSessionStoreTest, IntrusiveLruEvictsOldestAndTouchRefreshes) {
  auto model = TinyGru();
  // One shard isolates the recency list itself from hash placement.
  serve::SessionStore store(3, 1);
  auto s1 = store.Acquire(1, nullptr, model, 1);
  auto s2 = store.Acquire(2, nullptr, model, 1);
  auto s3 = store.Acquire(3, nullptr, model, 1);
  models::SessionState* p1 = s1.get();
  models::SessionState* p2 = s2.get();
  s1.reset();
  s2.reset();
  s3.reset();
  // Touch user 1: it moves to the MRU end, so the next eviction must take
  // user 2 (now the oldest), not 1.
  EXPECT_EQ(store.Acquire(1, nullptr, model, 1).get(), p1);
  store.Acquire(4, nullptr, model, 1);
  EXPECT_EQ(store.size(), 3);
  EXPECT_EQ(store.Acquire(1, nullptr, model, 1).get(), p1);  // survived
  EXPECT_NE(store.Acquire(2, nullptr, model, 1).get(), p2);  // rebuilt
}

TEST(ShardedSessionStoreTest, PinnedEntriesAreSkippedNotEvicted) {
  auto model = TinyGru();
  serve::SessionStore store(1, 1);
  auto pinned = store.Acquire(1, nullptr, model, 1);
  // Over-cap acquires while user 1 is pinned: the store overshoots rather
  // than freeing a state someone still holds (PR 6's ASan regression,
  // now per shard).
  auto also_pinned = store.Acquire(2, nullptr, model, 1);
  EXPECT_EQ(store.size(), 2);
  EXPECT_EQ(store.Acquire(1, nullptr, model, 1).get(), pinned.get());
  pinned.reset();
  also_pinned.reset();
  // With the pins gone the next miss sweeps the shard back under its cap.
  store.Acquire(3, nullptr, model, 1);
  EXPECT_EQ(store.size(), 1);
}

TEST(ShardedSessionStoreTest, VersionMismatchRebuildsInPlace) {
  auto model = TinyGru();
  serve::SessionStore store(0, 4);
  auto v1 = store.Acquire(7, nullptr, model, 1);
  EXPECT_EQ(store.Acquire(7, nullptr, model, 1).get(), v1.get());
  // A version bump (hot reload) must rebuild, never serve the stale state.
  auto v2 = store.Acquire(7, nullptr, model, 2);
  EXPECT_NE(v2.get(), v1.get());
  EXPECT_EQ(store.size(), 1);
  EXPECT_EQ(store.Acquire(7, nullptr, model, 2).get(), v2.get());
}

TEST(ShardedSessionStoreTest, ShardCountersTickOnlyWhenSharded) {
  auto model = TinyGru();
  metrics::SetEnabled(true);
  auto& m = serve::ServeMetrics();
  const double hits0 = m.shard_store_hits.Value();
  const double misses0 = m.shard_store_misses.Value();
  serve::SessionStore single(0, 1);
  single.Acquire(1, nullptr, model, 1);
  single.Acquire(1, nullptr, model, 1);
  EXPECT_EQ(m.shard_store_hits.Value(), hits0);
  EXPECT_EQ(m.shard_store_misses.Value(), misses0);
  serve::SessionStore sharded(0, 4);
  sharded.Acquire(1, nullptr, model, 1);
  sharded.Acquire(1, nullptr, model, 1);
  metrics::SetEnabled(false);
  EXPECT_EQ(m.shard_store_hits.Value(), hits0 + 1);
  EXPECT_EQ(m.shard_store_misses.Value(), misses0 + 1);
}

// The CI TSan job's target: concurrent Acquire (hits, misses, evictions),
// explicit Evicts, and version shifts (the reload path's store-visible
// effect) against one sharded store. Correctness here is "no data race, no
// lost size accounting", which TSan + the final invariants check.
TEST(ShardedSessionStoreTest, ConcurrentAcquireEvictReloadIsRaceFree) {
  auto model = TinyGru();
  serve::SessionStore store(32, 8);
  std::atomic<uint64_t> version{1};
  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const int user = (t * 37 + i * 11) % 64;
        auto handle = store.Acquire(
            user, nullptr, model, version.load(std::memory_order_relaxed));
        EXPECT_NE(handle, nullptr);
        if (i % 13 == 0) store.Evict((user + 1) % 64);
        if (t == 0 && i % 50 == 49) {
          version.fetch_add(1, std::memory_order_relaxed);  // "reload"
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  // All handles dropped: one sweep per shard restores the cap invariant.
  for (int u = 0; u < 64; ++u) {
    store.Acquire(u, nullptr, model,
                  version.load(std::memory_order_relaxed));
  }
  EXPECT_LE(store.size(), 32 + store.shards());
  EXPECT_GE(store.size(), 1);
}

std::vector<serve::Request> TestSplitRequests(int count) {
  std::vector<serve::Request> requests(count);
  for (int u = 0; u < count; ++u) {
    requests[u].user = TinySplit().test[u].user;
    requests[u].bootstrap = &TinySplit().test[u].history;
  }
  return requests;
}

TEST(ShardedEngineTest, ResponsesBitIdenticalToUnsharded) {
  IsaThreadGuard guard;
  auto model = TinyGru();
  models::Fit(*model, TinySplit(), {.max_epochs = 2, .patience = 1});
  const std::vector<serve::Request> requests = TestSplitRequests(8);
  for (bool int8 : {false, true}) {
    for (int threads : {1, 8}) {
      SetDefaultThreads(threads);
      serve::ServingConfig plain;
      plain.top_k = 5;
      plain.quantize_int8 = int8;
      serve::ServingConfig sharded = plain;
      sharded.score_shards = 7;
      sharded.session_shards = 4;
      sharded.max_sessions = 16;
      serve::ServingEngine plain_engine(*model, plain);
      serve::ServingEngine sharded_engine(*model, sharded);
      const auto expected = plain_engine.ScoreBatch(requests);
      const auto actual = sharded_engine.ScoreBatch(requests);
      ASSERT_EQ(expected.size(), actual.size());
      for (size_t r = 0; r < expected.size(); ++r) {
        const std::string label = std::string(int8 ? "int8" : "fp32") +
                                  " t" + std::to_string(threads) + " req " +
                                  std::to_string(r);
        ASSERT_EQ(expected[r].items, actual[r].items) << label;
        ASSERT_EQ(expected[r].scores.size(), actual[r].scores.size())
            << label;
        for (size_t j = 0; j < expected[r].scores.size(); ++j) {
          EXPECT_EQ(expected[r].scores[j], actual[r].scores[j]) << label;
        }
      }
    }
  }
}

TEST(ShardedEngineTest, ConfigClampsAndFlagsReachTheStore) {
  auto model = TinyGru();
  serve::ServingConfig sc;
  sc.top_k = 3;
  sc.score_shards = -4;
  sc.session_shards = 0;
  serve::ServingEngine engine(*model, sc);
  EXPECT_EQ(engine.config().score_shards, 1);
  EXPECT_EQ(engine.config().session_shards, 1);
  serve::ServingConfig wide;
  wide.top_k = 3;
  wide.session_shards = 6;
  serve::ServingEngine wide_engine(*model, wide);
  EXPECT_EQ(wide_engine.store().shards(), 6);
}

}  // namespace
}  // namespace causer
