// ISA selection suite: the override precedence (--cpu-isa flag >
// CAUSER_CPU_ISA env > cpuid), graceful degradation to the strongest
// available tier, and the parse/name round-trips that the CLI, the bench
// and the docs table all rely on. Selection state is process-global, so
// every test goes through the fixture's reset.

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/cpu.h"

namespace causer::cpu {
namespace {

class CpuIsaTest : public ::testing::Test {
 protected:
  void SetUp() override { Clear(); }
  void TearDown() override { Clear(); }
  static void Clear() {
    unsetenv("CAUSER_CPU_ISA");
    ResetIsaForTest();
  }
};

TEST_F(CpuIsaTest, NamesAndParseRoundTrip) {
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    Isa parsed = Isa::kScalar;
    ASSERT_TRUE(ParseIsa(IsaName(isa), &parsed));
    EXPECT_EQ(parsed, isa);
  }
  Isa parsed = Isa::kAvx2;
  EXPECT_TRUE(ParseIsa("auto", &parsed));
  EXPECT_EQ(parsed, DetectBest());
  // Unknown names fail without touching the output.
  parsed = Isa::kAvx512;
  EXPECT_FALSE(ParseIsa("", &parsed));
  EXPECT_FALSE(ParseIsa("AVX2", &parsed));
  EXPECT_FALSE(ParseIsa("sse", &parsed));
  EXPECT_FALSE(ParseIsa("avx-512", &parsed));
  EXPECT_EQ(parsed, Isa::kAvx512);
}

TEST_F(CpuIsaTest, ScalarAlwaysAvailable) {
  EXPECT_TRUE(IsaCompiled(Isa::kScalar));
  EXPECT_TRUE(IsaSupported(Isa::kScalar));
  const auto compiled = CompiledIsas();
  ASSERT_FALSE(compiled.empty());
  EXPECT_EQ(compiled.front(), Isa::kScalar);
  // Weakest-first order, and every listed tier really is compiled.
  for (size_t i = 0; i < compiled.size(); ++i) {
    EXPECT_TRUE(IsaCompiled(compiled[i]));
    if (i > 0) {
      EXPECT_GT(static_cast<int>(compiled[i]),
                static_cast<int>(compiled[i - 1]));
    }
  }
}

TEST_F(CpuIsaTest, CpuidDefaultPicksStrongestSupported) {
  const IsaSelection sel = ActiveSelection();
  EXPECT_EQ(sel.source, IsaSource::kCpuid);
  EXPECT_EQ(sel.active, DetectBest());
  EXPECT_FALSE(sel.fell_back);
  EXPECT_TRUE(IsaSupported(sel.active));
}

TEST_F(CpuIsaTest, EnvOverrideBeatsCpuid) {
  setenv("CAUSER_CPU_ISA", "scalar", 1);
  ResetIsaForTest();
  const IsaSelection sel = ActiveSelection();
  EXPECT_EQ(sel.source, IsaSource::kEnv);
  EXPECT_EQ(sel.requested, Isa::kScalar);
  EXPECT_EQ(sel.active, Isa::kScalar);
  EXPECT_EQ(ActiveIsa(), Isa::kScalar);
}

TEST_F(CpuIsaTest, FlagOverrideBeatsEnv) {
  // Env asks for the strongest tier; the flag pins scalar and must win.
  setenv("CAUSER_CPU_ISA", IsaName(DetectBest()), 1);
  ResetIsaForTest();
  ASSERT_TRUE(SetIsaOverride("scalar"));
  const IsaSelection sel = ActiveSelection();
  EXPECT_EQ(sel.source, IsaSource::kFlag);
  EXPECT_EQ(sel.active, Isa::kScalar);
  EXPECT_EQ(ActiveIsa(), Isa::kScalar);
}

TEST_F(CpuIsaTest, MalformedEnvFallsBackToCpuid) {
  setenv("CAUSER_CPU_ISA", "turbo9000", 1);
  ResetIsaForTest();
  const IsaSelection sel = ActiveSelection();
  EXPECT_EQ(sel.source, IsaSource::kCpuid);
  EXPECT_EQ(sel.active, DetectBest());
  EXPECT_FALSE(sel.fell_back);
}

TEST_F(CpuIsaTest, BadFlagRejectedWithoutStateChange) {
  const Isa before = ActiveIsa();
  EXPECT_FALSE(SetIsaOverride("turbo9000"));
  EXPECT_FALSE(SetIsaOverride(""));
  const IsaSelection sel = ActiveSelection();
  EXPECT_EQ(sel.source, IsaSource::kCpuid);
  EXPECT_EQ(sel.active, before);
}

TEST_F(CpuIsaTest, RequestedTiersDegradeGracefully) {
  // Whatever this machine supports, requesting any tier must yield a
  // supported tier at or below it, with fell_back set exactly when the
  // request could not be honored.
  for (Isa want : {Isa::kAvx512, Isa::kAvx2, Isa::kScalar}) {
    ASSERT_TRUE(SetIsaOverride(IsaName(want)));
    const IsaSelection sel = ActiveSelection();
    EXPECT_EQ(sel.source, IsaSource::kFlag);
    EXPECT_EQ(sel.requested, want);
    EXPECT_TRUE(IsaSupported(sel.active));
    EXPECT_LE(static_cast<int>(sel.active), static_cast<int>(want));
    EXPECT_EQ(sel.fell_back, sel.active != want);
    if (IsaSupported(want)) {
      EXPECT_EQ(sel.active, want);
      EXPECT_FALSE(sel.fell_back);
    }
  }
}

TEST_F(CpuIsaTest, UnsupportedEnvRequestDegradesInsteadOfFailing) {
  // avx512 may or may not run here; either way the selection must land on
  // a supported tier and record the env as the source.
  setenv("CAUSER_CPU_ISA", "avx512", 1);
  ResetIsaForTest();
  const IsaSelection sel = ActiveSelection();
  EXPECT_EQ(sel.source, IsaSource::kEnv);
  EXPECT_EQ(sel.requested, Isa::kAvx512);
  EXPECT_TRUE(IsaSupported(sel.active));
  EXPECT_EQ(sel.fell_back, sel.active != Isa::kAvx512);
}

}  // namespace
}  // namespace causer::cpu
