#include <gtest/gtest.h>

#include "common/flags.h"

namespace causer {
namespace {

Flags ParseList(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags::Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagsTest, EqualsSyntax) {
  Flags f = ParseList({"--name=value", "--n=42"});
  EXPECT_EQ(f.GetString("name"), "value");
  EXPECT_EQ(f.GetInt("n", 0), 42);
}

TEST(FlagsTest, SpaceSyntax) {
  Flags f = ParseList({"--name", "value", "--x", "1.5"});
  EXPECT_EQ(f.GetString("name"), "value");
  EXPECT_DOUBLE_EQ(f.GetDouble("x", 0), 1.5);
}

TEST(FlagsTest, BareFlagIsTrue) {
  Flags f = ParseList({"--verbose"});
  EXPECT_TRUE(f.Has("verbose"));
  EXPECT_TRUE(f.GetBool("verbose"));
  EXPECT_FALSE(f.GetBool("quiet"));
}

TEST(FlagsTest, BoolValues) {
  Flags f = ParseList({"--a=true", "--b=0", "--c=off", "--d=yes"});
  EXPECT_TRUE(f.GetBool("a"));
  EXPECT_FALSE(f.GetBool("b"));
  EXPECT_FALSE(f.GetBool("c"));
  EXPECT_TRUE(f.GetBool("d"));
}

TEST(FlagsTest, PositionalCollected) {
  Flags f = ParseList({"cmd", "--k=v", "file.txt"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "cmd");
  EXPECT_EQ(f.positional()[1], "file.txt");
}

TEST(FlagsTest, LaterOverridesEarlier) {
  Flags f = ParseList({"--n=1", "--n=2"});
  EXPECT_EQ(f.GetInt("n", 0), 2);
}

TEST(FlagsTest, MalformedNumbersAreUsageErrors) {
  // A present-but-garbled numeric value must exit 2, never silently take
  // the fallback ("--rerank-k=2kf" meant 2048, not the default).
  Flags f = ParseList({"--n=abc", "--k=2kf", "--x=1.2.3"});
  EXPECT_EXIT(f.GetInt("n", 7), testing::ExitedWithCode(2),
              "malformed integer for --n");
  EXPECT_EXIT(f.GetInt("k", 7), testing::ExitedWithCode(2),
              "malformed integer for --k");
  EXPECT_EXIT(f.GetDouble("x", 0.5), testing::ExitedWithCode(2),
              "malformed number for --x");
}

TEST(FlagsTest, AbsentOrEmptyNumbersStillFallBack) {
  Flags f = ParseList({"--present-empty"});
  EXPECT_EQ(f.GetInt("missing", 7), 7);
  EXPECT_EQ(f.GetInt("present-empty", 9), 9);
  EXPECT_DOUBLE_EQ(f.GetDouble("missing", 0.5), 0.5);
}

TEST(FlagsTest, FlagFollowedByFlagHasEmptyValue) {
  Flags f = ParseList({"--a", "--b=1"});
  EXPECT_TRUE(f.Has("a"));
  EXPECT_TRUE(f.GetBool("a"));
  EXPECT_EQ(f.GetInt("b", 0), 1);
}

TEST(FlagsTest, NegativeNumbersAsValues) {
  Flags f = ParseList({"--n=-5", "--x=-0.25"});
  EXPECT_EQ(f.GetInt("n", 0), -5);
  EXPECT_DOUBLE_EQ(f.GetDouble("x", 0), -0.25);
}

}  // namespace
}  // namespace causer
