#include <gtest/gtest.h>

#include <map>

#include "data/generator.h"
#include "data/stats.h"

// Statistical properties of the synthetic generator beyond structural
// validity: popularity skew (Zipf), user affinity concentration, sibling
// co-occurrence (the paper's printer -> {paper, ink} confound), and spec
// knob monotonicity.

namespace causer::data {
namespace {

DatasetSpec BigTiny() {
  DatasetSpec spec = TinySpec();
  spec.num_users = 300;
  spec.num_items = 60;
  spec.min_len = 5;
  spec.max_len = 12;
  return spec;
}

std::vector<int> ItemCounts(const Dataset& d) {
  std::vector<int> counts(d.num_items, 0);
  for (const auto& seq : d.sequences)
    for (const auto& step : seq.steps)
      for (int item : step.items) ++counts[item];
  return counts;
}

TEST(GeneratorStatsTest, PopularityIsSkewed) {
  Dataset d = MakeDataset(BigTiny());
  auto counts = ItemCounts(d);
  std::sort(counts.begin(), counts.end(), std::greater<int>());
  int top_decile = 0, bottom_half = 0;
  int top_n = d.num_items / 10, bottom_n = d.num_items / 2;
  for (int i = 0; i < top_n; ++i) top_decile += counts[i];
  for (int i = d.num_items - bottom_n; i < d.num_items; ++i)
    bottom_half += counts[i];
  // Zipf-weighted sampling concentrates mass on a few items per cluster.
  EXPECT_GT(top_decile, bottom_half)
      << "top 10% items should out-pull the bottom 50%";
}

TEST(GeneratorStatsTest, HigherZipfExponentMoreSkew) {
  DatasetSpec flat = BigTiny();
  flat.zipf_exponent = 0.0;
  DatasetSpec steep = BigTiny();
  steep.zipf_exponent = 2.0;
  auto gini = [](std::vector<int> counts) {
    std::sort(counts.begin(), counts.end());
    double total = 0, weighted = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      total += counts[i];
      weighted += (2.0 * (i + 1) - counts.size() - 1) * counts[i];
    }
    return total > 0 ? weighted / (counts.size() * total) : 0.0;
  };
  double g_flat = gini(ItemCounts(MakeDataset(flat)));
  double g_steep = gini(ItemCounts(MakeDataset(steep)));
  EXPECT_GT(g_steep, g_flat);
}

TEST(GeneratorStatsTest, CausalProbControlsCausalFraction) {
  DatasetSpec low = BigTiny();
  low.causal_prob = 0.1;
  DatasetSpec high = BigTiny();
  high.causal_prob = 0.9;
  auto causal_fraction = [](const Dataset& d) {
    int causal = 0, total = 0;
    for (const auto& seq : d.sequences)
      for (const auto& step : seq.steps)
        for (int cs : step.cause_step) {
          ++total;
          causal += cs >= 0;
        }
    return static_cast<double>(causal) / total;
  };
  EXPECT_LT(causal_fraction(MakeDataset(low)),
            causal_fraction(MakeDataset(high)));
}

TEST(GeneratorStatsTest, SiblingConfoundCreatesCoOccurrence) {
  // With sibling emission on, pairs of items from *different* child
  // clusters of a common parent co-occur in adjacent steps far more often
  // than under sibling_prob = 0.
  // Needs a DAG where some cluster has >= 2 children, else the sibling
  // mechanism never fires; a dense 6-cluster DAG guarantees it.
  DatasetSpec base = BigTiny();
  base.num_clusters = 6;
  base.cluster_edge_prob = 0.7;
  base.seed = 99;
  DatasetSpec with = base;
  with.sibling_prob = 0.6;
  DatasetSpec without = base;
  without.sibling_prob = 0.0;
  {
    Dataset probe = MakeDataset(base);
    bool multi_child = false;
    for (int c = 0; c < probe.true_cluster_graph.n(); ++c) {
      multi_child =
          multi_child || probe.true_cluster_graph.Children(c).size() >= 2;
    }
    ASSERT_TRUE(multi_child) << "spec must admit sibling emissions";
  }
  auto shared_cause_adjacent = [](const Dataset& d) {
    int hits = 0;
    for (const auto& seq : d.sequences) {
      for (size_t t = 1; t < seq.steps.size(); ++t) {
        // Same recorded cause item in consecutive steps = sibling effect.
        for (size_t a = 0; a < seq.steps[t - 1].cause_item.size(); ++a) {
          for (size_t b = 0; b < seq.steps[t].cause_item.size(); ++b) {
            if (seq.steps[t - 1].cause_item[a] >= 0 &&
                seq.steps[t - 1].cause_item[a] ==
                    seq.steps[t].cause_item[b] &&
                seq.steps[t - 1].cause_step[a] ==
                    seq.steps[t].cause_step[b]) {
              ++hits;
            }
          }
        }
      }
    }
    return hits;
  };
  EXPECT_GT(shared_cause_adjacent(MakeDataset(with)),
            2 * shared_cause_adjacent(MakeDataset(without)));
}

TEST(GeneratorStatsTest, AffinityConcentratesUsersOnClusters) {
  DatasetSpec strong = BigTiny();
  strong.user_affinity_concentration = 3.0;
  DatasetSpec weak = BigTiny();
  weak.user_affinity_concentration = 0.0;
  auto per_user_cluster_entropy = [](const Dataset& d) {
    double total_entropy = 0.0;
    for (const auto& seq : d.sequences) {
      std::map<int, int> counts;
      int n = 0;
      for (const auto& step : seq.steps)
        for (int item : step.items) {
          counts[d.item_true_cluster[item]]++;
          ++n;
        }
      double h = 0.0;
      for (const auto& [c, k] : counts) {
        double p = static_cast<double>(k) / n;
        h -= p * std::log(p);
      }
      total_entropy += h;
    }
    return total_entropy / d.sequences.size();
  };
  EXPECT_LT(per_user_cluster_entropy(MakeDataset(strong)),
            per_user_cluster_entropy(MakeDataset(weak)));
}

TEST(GeneratorStatsTest, LenStopProbControlsLength) {
  DatasetSpec quick = BigTiny();
  quick.len_stop_prob = 0.8;
  DatasetSpec slow = BigTiny();
  slow.len_stop_prob = 0.05;
  EXPECT_LT(MakeDataset(quick).AvgSequenceLength(),
            MakeDataset(slow).AvgSequenceLength());
}

TEST(GeneratorStatsTest, FeatureNoiseControlsSeparability) {
  auto separability = [](const Dataset& d) {
    // Ratio of mean cross-cluster to mean within-cluster distance.
    double same = 0, cross = 0;
    int same_n = 0, cross_n = 0;
    for (int a = 0; a < d.num_items; ++a) {
      for (int b = a + 1; b < d.num_items; ++b) {
        double dist = 0;
        for (size_t f = 0; f < d.item_features[a].size(); ++f) {
          double diff = d.item_features[a][f] - d.item_features[b][f];
          dist += diff * diff;
        }
        if (d.item_true_cluster[a] == d.item_true_cluster[b]) {
          same += dist;
          ++same_n;
        } else {
          cross += dist;
          ++cross_n;
        }
      }
    }
    return (cross / cross_n) / (same / same_n);
  };
  DatasetSpec clean = BigTiny();
  clean.feature_noise = 0.05;
  DatasetSpec noisy = BigTiny();
  noisy.feature_noise = 1.5;
  EXPECT_GT(separability(MakeDataset(clean)),
            separability(MakeDataset(noisy)));
}

}  // namespace
}  // namespace causer::data
