#include "common/fault.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace causer::fault {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { DisarmAll(); }
};

TEST_F(FaultTest, DisarmedNeverFires) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(ShouldFail("test.point"));
  }
  EXPECT_EQ(HitCount("test.point"), 0);  // hits only counted while armed
}

TEST_F(FaultTest, ArmedPointFiresOnFirstHitOnce) {
  Arm("test.point");
  EXPECT_TRUE(ShouldFail("test.point"));
  EXPECT_FALSE(ShouldFail("test.point"));
  EXPECT_FALSE(ShouldFail("test.point"));
  EXPECT_EQ(HitCount("test.point"), 3);
  EXPECT_EQ(FireCount("test.point"), 1);
}

TEST_F(FaultTest, ArmingOnePointDoesNotAffectOthers) {
  Arm("test.a");
  EXPECT_FALSE(ShouldFail("test.b"));
  EXPECT_TRUE(ShouldFail("test.a"));
}

TEST_F(FaultTest, FireOnNthHit) {
  Arm("test.point", /*fire_on_hit=*/3);
  EXPECT_FALSE(ShouldFail("test.point"));
  EXPECT_FALSE(ShouldFail("test.point"));
  EXPECT_TRUE(ShouldFail("test.point"));
  EXPECT_FALSE(ShouldFail("test.point"));
}

TEST_F(FaultTest, FireWindow) {
  Arm("test.point", /*fire_on_hit=*/2, /*times=*/3);
  EXPECT_FALSE(ShouldFail("test.point"));  // hit 1
  EXPECT_TRUE(ShouldFail("test.point"));   // hits 2..4 fire
  EXPECT_TRUE(ShouldFail("test.point"));
  EXPECT_TRUE(ShouldFail("test.point"));
  EXPECT_FALSE(ShouldFail("test.point"));  // window exhausted
  EXPECT_EQ(FireCount("test.point"), 3);
}

TEST_F(FaultTest, RearmResetsHitCount) {
  Arm("test.point", /*fire_on_hit=*/2);
  EXPECT_FALSE(ShouldFail("test.point"));
  Arm("test.point", /*fire_on_hit=*/2);
  EXPECT_FALSE(ShouldFail("test.point"));  // hit 1 again after re-arm
  EXPECT_TRUE(ShouldFail("test.point"));
}

TEST_F(FaultTest, DisarmStopsFiring) {
  Arm("test.point", /*fire_on_hit=*/1, /*times=*/100);
  EXPECT_TRUE(ShouldFail("test.point"));
  Disarm("test.point");
  EXPECT_FALSE(ShouldFail("test.point"));
  EXPECT_EQ(HitCount("test.point"), 0);
}

TEST_F(FaultTest, SpecSingleEntry) {
  ASSERT_TRUE(ArmFromSpec("test.point"));
  EXPECT_TRUE(ShouldFail("test.point"));
}

TEST_F(FaultTest, SpecWithHitAndWindow) {
  ASSERT_TRUE(ArmFromSpec("test.a@2,test.b@1*2"));
  EXPECT_FALSE(ShouldFail("test.a"));
  EXPECT_TRUE(ShouldFail("test.a"));
  EXPECT_TRUE(ShouldFail("test.b"));
  EXPECT_TRUE(ShouldFail("test.b"));
  EXPECT_FALSE(ShouldFail("test.b"));
}

TEST_F(FaultTest, MalformedSpecsArmNothing) {
  EXPECT_FALSE(ArmFromSpec(""));
  EXPECT_FALSE(ArmFromSpec("@3"));
  EXPECT_FALSE(ArmFromSpec("test.point@"));
  EXPECT_FALSE(ArmFromSpec("test.point@zero"));
  EXPECT_FALSE(ArmFromSpec("test.point@0"));
  EXPECT_FALSE(ArmFromSpec("test.point@1*"));
  EXPECT_FALSE(ArmFromSpec("test.point@1*0"));
  EXPECT_FALSE(ArmFromSpec("test.point@1x2"));
  // A malformed tail must not leave the valid head armed.
  EXPECT_FALSE(ArmFromSpec("test.good,test.bad@"));
  EXPECT_FALSE(ShouldFail("test.good"));
}

TEST_F(FaultTest, ArmFromEnvironmentHonorsVariable) {
  ASSERT_EQ(setenv("CAUSER_FAULT", "test.env@1", 1), 0);
  ArmFromEnvironment();
  EXPECT_TRUE(ShouldFail("test.env"));
  ASSERT_EQ(unsetenv("CAUSER_FAULT"), 0);
}

TEST_F(FaultTest, ArmFromEnvironmentIgnoresUnset) {
  ASSERT_EQ(unsetenv("CAUSER_FAULT"), 0);
  ArmFromEnvironment();  // must not abort or arm anything
  EXPECT_FALSE(ShouldFail("test.env"));
}

TEST_F(FaultTest, ArmFromEnvironmentAbortsOnMalformedSpec) {
  ASSERT_EQ(setenv("CAUSER_FAULT", "@broken", 1), 0);
  EXPECT_DEATH(ArmFromEnvironment(), "CAUSER_FAULT");
  ASSERT_EQ(unsetenv("CAUSER_FAULT"), 0);
}

}  // namespace
}  // namespace causer::fault
