#include <gtest/gtest.h>

#include "causal/notears.h"
#include "causal/pc.h"

namespace causer::causal {
namespace {

TEST(CorrelationTest, IdentityForIndependentColumns) {
  Rng rng(3);
  Dense x(2000, 3);
  for (auto& v : x.data()) v = rng.Normal();
  Dense c = CorrelationMatrix(x);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(c(i, i), 1.0, 1e-9);
    for (int j = 0; j < 3; ++j) {
      if (i != j) EXPECT_NEAR(c(i, j), 0.0, 0.08);
    }
  }
}

TEST(CorrelationTest, PerfectlyCorrelatedColumns) {
  Dense x(100, 2);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    x(i, 0) = rng.Normal();
    x(i, 1) = 2.0 * x(i, 0) + 1.0;
  }
  Dense c = CorrelationMatrix(x);
  EXPECT_NEAR(c(0, 1), 1.0, 1e-9);
}

TEST(CiTest, MarginalDependenceDetected) {
  Rng rng(5);
  Graph g(2);
  g.SetEdge(0, 1);
  Dense x = SimulateLinearSem(g, 500, 1.0, 1.5, rng);
  Dense corr = CorrelationMatrix(x);
  EXPECT_FALSE(GaussianCiTest(corr, 500, 0, 1, {}, 0.01));
}

TEST(CiTest, ChainConditionalIndependence) {
  // 0 -> 1 -> 2: 0 ⟂ 2 | 1, but 0 and 2 marginally dependent.
  Rng rng(6);
  Graph g(3);
  g.SetEdge(0, 1);
  g.SetEdge(1, 2);
  Dense x = SimulateLinearSem(g, 1500, 1.0, 1.5, rng);
  Dense corr = CorrelationMatrix(x);
  EXPECT_FALSE(GaussianCiTest(corr, 1500, 0, 2, {}, 0.01));
  EXPECT_TRUE(GaussianCiTest(corr, 1500, 0, 2, {1}, 0.01));
}

TEST(CiTest, ColliderConditionalDependence) {
  // 0 -> 2 <- 1: 0 ⟂ 1 marginally but dependent given 2.
  Rng rng(7);
  Graph g(3);
  g.SetEdge(0, 2);
  g.SetEdge(1, 2);
  Dense x = SimulateLinearSem(g, 1500, 1.0, 1.5, rng);
  Dense corr = CorrelationMatrix(x);
  EXPECT_TRUE(GaussianCiTest(corr, 1500, 0, 1, {}, 0.01));
  EXPECT_FALSE(GaussianCiTest(corr, 1500, 0, 1, {2}, 0.01));
}

TEST(CiTest, TooFewSamplesNeverRejects) {
  Dense corr = Dense::Identity(4);
  corr(0, 1) = corr(1, 0) = 0.9;
  EXPECT_TRUE(GaussianCiTest(corr, 4, 0, 1, {2, 3}, 0.01));
}

TEST(PcTest, RecoversColliderExactly) {
  Rng rng(8);
  Graph g(3);
  g.SetEdge(0, 2);
  g.SetEdge(1, 2);
  Dense x = SimulateLinearSem(g, 2000, 1.0, 1.8, rng);
  PcResult result = PcAlgorithm(x);
  EXPECT_TRUE(result.cpdag.HasDirected(0, 2));
  EXPECT_TRUE(result.cpdag.HasDirected(1, 2));
  EXPECT_FALSE(result.cpdag.Adjacent(0, 1));
  EXPECT_GT(result.num_tests, 0);
}

TEST(PcTest, ChainLeftUndirected) {
  // A chain has no v-structure, so its CPDAG is fully undirected.
  Rng rng(9);
  Graph g(3);
  g.SetEdge(0, 1);
  g.SetEdge(1, 2);
  Dense x = SimulateLinearSem(g, 2000, 1.0, 1.8, rng);
  PcResult result = PcAlgorithm(x);
  EXPECT_TRUE(result.cpdag.HasUndirected(0, 1));
  EXPECT_TRUE(result.cpdag.HasUndirected(1, 2));
  EXPECT_FALSE(result.cpdag.Adjacent(0, 2));
}

TEST(PcTest, MatchesTrueCpdagOnRandomDag) {
  Rng rng(10);
  Graph truth = RandomDag(5, 0.4, rng);
  Dense x = SimulateLinearSem(truth, 4000, 1.0, 2.0, rng);
  PcResult result = PcAlgorithm(x);
  Pdag expected = Cpdag(truth);
  int mismatches = 0;
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      bool got_dir = result.cpdag.HasDirected(i, j);
      bool want_dir = expected.HasDirected(i, j);
      bool got_und = result.cpdag.HasUndirected(i, j);
      bool want_und = expected.HasUndirected(i, j);
      mismatches += (got_dir != want_dir) + (got_und != want_und);
    }
  }
  EXPECT_LE(mismatches, 2) << "PC deviates from the true CPDAG";
}

TEST(PcTest, IndependentDataGivesEmptyGraph) {
  Rng rng(11);
  Dense x(800, 4);
  for (auto& v : x.data()) v = rng.Normal();
  PcResult result = PcAlgorithm(x);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) EXPECT_FALSE(result.cpdag.Adjacent(i, j));
}

TEST(MeekRulesTest, RuleOneFires) {
  Pdag p(3);
  p.SetDirected(0, 1);
  p.SetUndirected(1, 2);
  // 0 and 2 non-adjacent -> orient 1 -> 2.
  ApplyMeekRules(p);
  EXPECT_TRUE(p.HasDirected(1, 2));
}

TEST(MeekRulesTest, NoSpuriousOrientation) {
  Pdag p(3);
  p.SetUndirected(0, 1);
  p.SetUndirected(1, 2);
  ApplyMeekRules(p);
  EXPECT_TRUE(p.HasUndirected(0, 1));
  EXPECT_TRUE(p.HasUndirected(1, 2));
}

}  // namespace
}  // namespace causer::causal
