#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace causer::tensor {
namespace {

TEST(TensorTest, ZerosShapeAndValues) {
  Tensor t = Tensor::Zeros(2, 3);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6);
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 3; ++c) EXPECT_EQ(t.At(r, c), 0.0f);
}

TEST(TensorTest, FullAndScalar) {
  Tensor t = Tensor::Full(2, 2, 3.5f);
  EXPECT_EQ(t.At(1, 1), 3.5f);
  Tensor s = Tensor::Scalar(-2.0f);
  EXPECT_EQ(s.Item(), -2.0f);
}

TEST(TensorTest, FromDataRowMajor) {
  Tensor t = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.At(0, 2), 3.0f);
  EXPECT_EQ(t.At(1, 0), 4.0f);
}

TEST(TensorTest, RandomUniformRange) {
  Rng rng(5);
  Tensor t = Tensor::RandomUniform(10, 10, -1.0f, 1.0f, rng);
  for (float v : t.data()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(TensorTest, CloneIndependent) {
  Tensor a = Tensor::Full(1, 2, 1.0f);
  Tensor b = a.Clone();
  b.At(0, 0) = 9.0f;
  EXPECT_EQ(a.At(0, 0), 1.0f);
}

TEST(TensorTest, CopyAliasesNode) {
  Tensor a = Tensor::Full(1, 2, 1.0f);
  Tensor b = a;
  b.At(0, 0) = 9.0f;
  EXPECT_EQ(a.At(0, 0), 9.0f);
}

TEST(OpsTest, AddSameShape) {
  Tensor a = Tensor::FromData(2, 2, {1, 2, 3, 4});
  Tensor b = Tensor::FromData(2, 2, {10, 20, 30, 40});
  Tensor c = Add(a, b);
  EXPECT_EQ(c.At(0, 0), 11.0f);
  EXPECT_EQ(c.At(1, 1), 44.0f);
}

TEST(OpsTest, AddBroadcastRow) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor bias = Tensor::FromData(1, 3, {10, 20, 30});
  Tensor c = Add(a, bias);
  EXPECT_EQ(c.At(0, 0), 11.0f);
  EXPECT_EQ(c.At(1, 2), 36.0f);
}

TEST(OpsTest, AddBroadcastColumn) {
  Tensor a = Tensor::FromData(2, 2, {1, 2, 3, 4});
  Tensor col = Tensor::FromData(2, 1, {10, 100});
  Tensor c = Add(a, col);
  EXPECT_EQ(c.At(0, 1), 12.0f);
  EXPECT_EQ(c.At(1, 0), 103.0f);
}

TEST(OpsTest, AddBroadcastScalar) {
  Tensor a = Tensor::FromData(2, 2, {1, 2, 3, 4});
  Tensor c = Add(a, Tensor::Scalar(5.0f));
  EXPECT_EQ(c.At(1, 1), 9.0f);
}

TEST(OpsTest, SubAndNeg) {
  Tensor a = Tensor::FromData(1, 2, {5, 7});
  Tensor b = Tensor::FromData(1, 2, {2, 3});
  EXPECT_EQ(Sub(a, b).At(0, 1), 4.0f);
  EXPECT_EQ(Neg(a).At(0, 0), -5.0f);
}

TEST(OpsTest, MulBroadcastColumnScalesRows) {
  Tensor h = Tensor::FromData(2, 2, {1, 2, 3, 4});
  Tensor w = Tensor::FromData(2, 1, {2, 10});
  Tensor c = Mul(h, w);
  EXPECT_EQ(c.At(0, 1), 4.0f);
  EXPECT_EQ(c.At(1, 0), 30.0f);
}

TEST(OpsTest, DivElementwise) {
  Tensor a = Tensor::FromData(1, 2, {6, 9});
  Tensor b = Tensor::FromData(1, 2, {2, 3});
  Tensor c = Div(a, b);
  EXPECT_FLOAT_EQ(c.At(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 3.0f);
}

TEST(OpsTest, ScalarOps) {
  Tensor a = Tensor::FromData(1, 2, {1, -2});
  EXPECT_EQ(ScalarMul(a, 3.0f).At(0, 1), -6.0f);
  EXPECT_EQ(AddScalar(a, 1.5f).At(0, 0), 2.5f);
}

TEST(OpsTest, MatMulKnownValues) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_FLOAT_EQ(c.At(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154.0f);
}

TEST(OpsTest, MatMulIdentity) {
  Tensor a = Tensor::FromData(2, 2, {1, 2, 3, 4});
  Tensor eye = Tensor::FromData(2, 2, {1, 0, 0, 1});
  Tensor c = MatMul(a, eye);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(c.data()[i], a.data()[i]);
}

TEST(OpsTest, TransposeValues) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(a);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t.At(2, 0), 3.0f);
  EXPECT_EQ(t.At(0, 1), 4.0f);
}

TEST(OpsTest, SigmoidValues) {
  Tensor a = Tensor::FromData(1, 3, {0.0f, 100.0f, -100.0f});
  Tensor s = Sigmoid(a);
  EXPECT_FLOAT_EQ(s.At(0, 0), 0.5f);
  EXPECT_NEAR(s.At(0, 1), 1.0f, 1e-6);
  EXPECT_NEAR(s.At(0, 2), 0.0f, 1e-6);
}

TEST(OpsTest, TanhAndRelu) {
  Tensor a = Tensor::FromData(1, 2, {0.0f, -3.0f});
  EXPECT_FLOAT_EQ(Tanh(a).At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(Relu(a).At(0, 1), 0.0f);
  Tensor b = Tensor::FromData(1, 1, {2.0f});
  EXPECT_FLOAT_EQ(Relu(b).At(0, 0), 2.0f);
}

TEST(OpsTest, ExpLog) {
  Tensor a = Tensor::FromData(1, 2, {0.0f, 1.0f});
  EXPECT_FLOAT_EQ(Exp(a).At(0, 0), 1.0f);
  EXPECT_NEAR(Exp(a).At(0, 1), 2.718281828f, 1e-5);
  Tensor b = Tensor::FromData(1, 1, {std::exp(2.0f)});
  EXPECT_NEAR(Log(b).At(0, 0), 2.0f, 1e-5);
}

TEST(OpsTest, LogClampsAtEps) {
  Tensor zero = Tensor::FromData(1, 1, {0.0f});
  EXPECT_TRUE(std::isfinite(Log(zero).At(0, 0)));
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, -5, 0, 5});
  Tensor s = SoftmaxRows(a);
  for (int r = 0; r < 2; ++r) {
    float sum = 0;
    for (int c = 0; c < 3; ++c) {
      sum += s.At(r, c);
      EXPECT_GT(s.At(r, c), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
  EXPECT_GT(s.At(0, 2), s.At(0, 0));
}

TEST(OpsTest, SoftmaxTemperatureSharpens) {
  Tensor a = Tensor::FromData(1, 2, {1.0f, 2.0f});
  float soft = SoftmaxRows(a, 10.0f).At(0, 1);
  float sharp = SoftmaxRows(a, 0.1f).At(0, 1);
  EXPECT_LT(soft, sharp);
  EXPECT_GT(sharp, 0.99f);
}

TEST(OpsTest, SoftmaxStableForLargeLogits) {
  Tensor a = Tensor::FromData(1, 2, {1000.0f, 1001.0f});
  Tensor s = SoftmaxRows(a);
  EXPECT_TRUE(std::isfinite(s.At(0, 0)));
  EXPECT_NEAR(s.At(0, 0) + s.At(0, 1), 1.0f, 1e-5);
}

TEST(OpsTest, Reductions) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(Sum(a).Item(), 21.0f);
  EXPECT_FLOAT_EQ(Mean(a).Item(), 3.5f);
  Tensor rows = SumRows(a);
  EXPECT_FLOAT_EQ(rows.At(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(rows.At(1, 0), 15.0f);
  Tensor cols = SumCols(a);
  EXPECT_FLOAT_EQ(cols.At(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(cols.At(0, 2), 9.0f);
}

TEST(OpsTest, Norms) {
  Tensor a = Tensor::FromData(1, 3, {3.0f, -4.0f, 0.0f});
  EXPECT_FLOAT_EQ(L1Norm(a).Item(), 7.0f);
  EXPECT_FLOAT_EQ(SquaredNorm(a).Item(), 25.0f);
}

TEST(OpsTest, ConcatCols) {
  Tensor a = Tensor::FromData(2, 1, {1, 2});
  Tensor b = Tensor::FromData(2, 2, {3, 4, 5, 6});
  Tensor c = ConcatCols(a, b);
  EXPECT_EQ(c.cols(), 3);
  EXPECT_FLOAT_EQ(c.At(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(c.At(1, 2), 6.0f);
}

TEST(OpsTest, ConcatRows) {
  Tensor a = Tensor::FromData(1, 2, {1, 2});
  Tensor b = Tensor::FromData(2, 2, {3, 4, 5, 6});
  Tensor c = ConcatRows({a, b});
  EXPECT_EQ(c.rows(), 3);
  EXPECT_FLOAT_EQ(c.At(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(c.At(2, 0), 5.0f);
}

TEST(OpsTest, SliceRows) {
  Tensor a = Tensor::FromData(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor s = SliceRows(a, 1, 2);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_FLOAT_EQ(s.At(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(s.At(1, 1), 6.0f);
}

TEST(OpsTest, GatherRowsWithRepeats) {
  Tensor a = Tensor::FromData(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor g = GatherRows(a, {2, 0, 2});
  EXPECT_EQ(g.rows(), 3);
  EXPECT_FLOAT_EQ(g.At(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(g.At(1, 1), 2.0f);
  EXPECT_FLOAT_EQ(g.At(2, 1), 6.0f);
}

TEST(OpsTest, BceWithLogitsKnownValue) {
  // x = 0, t = 1: loss = log(2).
  Tensor x = Tensor::FromData(1, 1, {0.0f});
  Tensor t = Tensor::FromData(1, 1, {1.0f});
  EXPECT_NEAR(BceWithLogits(x, t).Item(), std::log(2.0f), 1e-5);
}

TEST(OpsTest, BceWithLogitsStableForExtremeLogits) {
  Tensor x = Tensor::FromData(1, 2, {80.0f, -80.0f});
  Tensor t = Tensor::FromData(1, 2, {1.0f, 0.0f});
  float loss = BceWithLogits(x, t).Item();
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0f, 1e-4);
}

TEST(OpsTest, BceMeanReduction) {
  Tensor x = Tensor::FromData(2, 1, {0.0f, 0.0f});
  Tensor t = Tensor::FromData(2, 1, {1.0f, 0.0f});
  EXPECT_NEAR(BceWithLogits(x, t, Reduction::kMean).Item(), std::log(2.0f),
              1e-5);
}

TEST(OpsTest, MseLossValues) {
  Tensor a = Tensor::FromData(1, 2, {1.0f, 2.0f});
  Tensor b = Tensor::FromData(1, 2, {3.0f, 2.0f});
  EXPECT_FLOAT_EQ(MseLoss(a, b).Item(), 4.0f);
  EXPECT_FLOAT_EQ(MseLoss(a, b, Reduction::kMean).Item(), 2.0f);
}

TEST(NoGradTest, GuardDisablesGraph) {
  Tensor a = Tensor::Full(1, 1, 2.0f, /*requires_grad=*/true);
  {
    NoGradGuard guard;
    EXPECT_FALSE(GradEnabled());
    Tensor b = ScalarMul(a, 3.0f);
    EXPECT_FALSE(b.requires_grad());
  }
  EXPECT_TRUE(GradEnabled());
  Tensor c = ScalarMul(a, 3.0f);
  EXPECT_TRUE(c.requires_grad());
}

}  // namespace
}  // namespace causer::tensor
