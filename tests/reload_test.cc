// Hot-reload suite (src/serve/model_registry.h, ServingEngine::Reload):
// the registry must load parameter dumps and CRC-validated training
// checkpoints and reject corrupt files without touching the live version;
// the engine must swap models with one atomic publish (in-flight batches
// finish on the version they pinned, responses are stamped with the
// version that scored them), rebuild the int8 table on reload, and reject
// catalog-size mismatches; version-stamped session states must be
// rebuilt from bootstrap on next touch bit-identically to a fresh replay
// (GRU and Causer, under LRU pressure and pinning, at 1 and 8 workers);
// the server must honor kReload control frames and the slow-loris read
// deadline; Client::CallWithRetry must ride out torn frames within its
// deadline budget.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/net.h"
#include "core/causer_model.h"
#include "core/checkpoint.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/split.h"
#include "eval/metrics.h"
#include "models/gru4rec.h"
#include "nn/serialization.h"
#include "serve/client.h"
#include "serve/engine.h"
#include "serve/model_registry.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/session_store.h"

namespace causer::serve {
namespace {

const data::Dataset& TinyData() {
  static data::Dataset d = data::MakeDataset(data::TinySpec());
  return d;
}

const data::Split& TinySplit() {
  static data::Split s = data::LeaveLastOut(TinyData());
  return s;
}

models::ModelConfig GruConfig(uint64_t seed) {
  models::ModelConfig config;
  config.num_users = TinyData().num_users;
  config.num_items = TinyData().num_items;
  config.embedding_dim = 8;
  config.hidden_dim = 8;
  config.seed = seed;
  return config;
}

/// Untrained GRU4Rec seeded differently per call site: cheap, and two
/// seeds give two genuinely different weight sets, so a reload visibly
/// changes every score.
std::shared_ptr<models::Gru4Rec> GruModel(uint64_t seed) {
  return std::make_shared<models::Gru4Rec>(GruConfig(seed));
}

core::CauserConfig TinyCauserConfig(uint64_t seed) {
  core::CauserConfig c =
      core::DefaultCauserConfig(TinyData(), core::Backbone::kGru);
  c.base.embedding_dim = 8;
  c.base.hidden_dim = 8;
  c.base.seed = seed;
  c.encoder_hidden = 8;
  c.cluster_dim = 8;
  return c;
}

/// The bootstrap history for test instance `index`.
const std::vector<data::Step>& History(int index) {
  return TinySplit().test[index].history;
}

void ExpectTopKOfModel(const Response& response,
                       models::SequentialRecommender& model, int user,
                       const std::vector<data::Step>& history,
                       const char* label) {
  ASSERT_EQ(response.status, ResponseStatus::kOk) << label;
  auto scores = model.ScoreAll(user, history);
  auto ranked = eval::TopK(scores, static_cast<int>(response.items.size()));
  ASSERT_EQ(response.items.size(), ranked.size()) << label;
  for (size_t j = 0; j < ranked.size(); ++j) {
    ASSERT_EQ(response.items[j], ranked[j]) << label << " rank " << j;
    ASSERT_EQ(response.scores[j], scores[ranked[j]]) << label << " rank " << j;
  }
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

/// Registry-snapshot lookup for metrics whose instrument structs are
/// private to their .cc (the server front-end group).
uint64_t CounterValue(const std::string& name) {
  for (const auto& entry : metrics::Snapshot()) {
    if (entry.name == name) return entry.count;
  }
  return 0;
}

// ---- ModelRegistry ----------------------------------------------------

TEST(ModelRegistryTest, PublishBumpsVersionsAndCurrentIsLatest) {
  ModelRegistry registry;
  EXPECT_EQ(registry.Current(), nullptr);
  auto v1 = registry.Publish(GruModel(1), "a");
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version, 1u);
  EXPECT_EQ(v1->source, "a");
  auto v2 = registry.Publish(GruModel(2), "b");
  EXPECT_EQ(v2->version, 2u);
  EXPECT_EQ(registry.Current(), v2);
  // The older version stays alive for whoever still holds it.
  EXPECT_EQ(v1->version, 1u);
  ASSERT_NE(v1->model, nullptr);
}

TEST(ModelRegistryTest, LoadAndPublishReadsParameterDumpsAndCheckpoints) {
  auto dump_source = GruModel(11);
  const std::string dump_path = TempPath("reload_dump.model");
  ASSERT_TRUE(nn::SaveParameters(*dump_source, dump_path));

  auto ckpt_source = GruModel(22);
  models::FitResumeState resume;
  const std::string ckpt_path = TempPath("ckpt-000003.causer");
  ASSERT_TRUE(core::SaveTrainingCheckpoint(*ckpt_source, resume, ckpt_path));

  ModelRegistry registry(
      [] { return std::make_unique<models::Gru4Rec>(GruConfig(99)); });

  auto from_dump = registry.LoadAndPublish(dump_path);
  ASSERT_NE(from_dump, nullptr);
  EXPECT_EQ(from_dump->version, 1u);
  EXPECT_EQ(from_dump->source, dump_path);

  auto from_ckpt = registry.LoadAndPublish(ckpt_path);
  ASSERT_NE(from_ckpt, nullptr);
  EXPECT_EQ(from_ckpt->version, 2u);

  // Restored weights must score bit-identically to their source model.
  const auto& inst = TinySplit().test[0];
  auto dump_scores = from_dump->model->ScoreAll(inst.user, inst.history);
  auto dump_expected = dump_source->ScoreAll(inst.user, inst.history);
  ASSERT_EQ(dump_scores, dump_expected);
  auto ckpt_scores = from_ckpt->model->ScoreAll(inst.user, inst.history);
  auto ckpt_expected = ckpt_source->ScoreAll(inst.user, inst.history);
  ASSERT_EQ(ckpt_scores, ckpt_expected);
  ASSERT_NE(dump_scores, ckpt_scores);  // the seeds really differ
}

TEST(ModelRegistryTest, CorruptFileRejectedWithoutTouchingCurrent) {
  ModelRegistry registry(
      [] { return std::make_unique<models::Gru4Rec>(GruConfig(1)); });
  auto live = registry.Publish(GruModel(1), "live");

  const std::string junk_path = TempPath("reload_junk.model");
  std::FILE* f = std::fopen(junk_path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[] = "not a model file";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);

  EXPECT_EQ(registry.LoadAndPublish(junk_path), nullptr);
  EXPECT_EQ(registry.LoadAndPublish(TempPath("reload_missing.model")),
            nullptr);
  EXPECT_EQ(registry.Current(), live);
}

// ---- ServingEngine::Reload --------------------------------------------

TEST(EngineReloadTest, ReloadSwapsVersionAndStampsResponses) {
  auto a = GruModel(1);
  auto b = GruModel(2);
  ServingConfig sc;
  sc.top_k = 5;
  ServingEngine engine(a, sc);
  EXPECT_EQ(engine.active_version(), 1u);

  Request request;
  request.user = TinySplit().test[0].user;
  request.bootstrap = &History(0);
  Response before = engine.Handle(request);
  EXPECT_EQ(before.model_version, 1u);
  ExpectTopKOfModel(before, *a, request.user, History(0), "v1");

  EXPECT_EQ(engine.Reload(b, "b"), 2u);
  EXPECT_EQ(engine.active_version(), 2u);
  Response after = engine.Handle(request);
  EXPECT_EQ(after.model_version, 2u);
  ExpectTopKOfModel(after, *b, request.user, History(0), "v2");
  ASSERT_NE(before.scores, after.scores);
}

TEST(EngineReloadTest, RejectsNullAndCatalogMismatch) {
  metrics::SetEnabled(true);
  const uint64_t failures_before = ServeMetrics().reload_failures.Value();
  ServingConfig sc;
  ServingEngine engine(GruModel(1), sc);
  EXPECT_EQ(engine.Reload(nullptr), 0u);
  models::ModelConfig small = GruConfig(3);
  small.num_items = TinyData().num_items / 2;
  EXPECT_EQ(engine.Reload(std::make_shared<models::Gru4Rec>(small)), 0u);
  EXPECT_EQ(engine.active_version(), 1u);
  EXPECT_EQ(ServeMetrics().reload_failures.Value(), failures_before + 2);
  metrics::SetEnabled(false);
}

TEST(EngineReloadTest, QuantizedTableRebuiltOnReload) {
  auto b = GruModel(2);
  ServingConfig sc;
  sc.top_k = 5;
  sc.quantize_int8 = true;
  sc.rerank_k = TinyData().num_items;  // full re-rank: bit-identical to fp32
  ServingEngine engine(GruModel(1), sc);
  ASSERT_EQ(engine.Reload(b, "b"), 2u);
  Request request;
  request.user = TinySplit().test[1].user;
  request.bootstrap = &History(1);
  Response response = engine.Handle(request);
  EXPECT_EQ(response.model_version, 2u);
  ExpectTopKOfModel(response, *b, request.user, History(1), "quantized v2");
}

TEST(EngineReloadTest, MidBatchReloadPinsTheVersionThatStartedScoring) {
  // Widen the pin-to-score window so reloads land mid-batch, then check
  // every response against the weights of the version stamped on it:
  // versions alternate a (odd) / b (even) by construction below.
  fault::Arm("serve.reload_mid_batch", 1, 1000000000);
  auto a = GruModel(1);
  auto b = GruModel(2);
  ServingConfig sc;
  sc.top_k = 5;
  sc.batch_max = 4;
  ServingEngine engine(a, sc);

  std::atomic<bool> stop{false};
  std::thread reloader([&] {
    for (int round = 0; round < 20; ++round) {
      engine.Reload(round % 2 == 0 ? b : a);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    stop.store(true);
  });

  const int kClients = 4;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int index = c % static_cast<int>(TinySplit().test.size());
      Request request;
      request.user = TinySplit().test[index].user;
      request.bootstrap = &History(index);
      while (!stop.load()) {
        Response response = engine.Handle(request);
        ASSERT_EQ(response.status, ResponseStatus::kOk);
        ASSERT_GE(response.model_version, 1u);
        models::SequentialRecommender& expected =
            response.model_version % 2 == 1 ? *a : *b;
        ExpectTopKOfModel(response, expected, request.user, History(index),
                          "mid-batch reload");
      }
    });
  }
  for (auto& t : clients) t.join();
  reloader.join();
  fault::DisarmAll();
}

// ---- SessionStore version invalidation --------------------------------

/// Stale rebuild == fresh replay, bit for bit: a state built by version 1
/// and touched under version 2 must be indistinguishable from a state
/// built under version 2 from scratch.
void ExpectStaleRebuildMatchesFreshReplay(
    const std::shared_ptr<models::SequentialRecommender>& m1,
    const std::shared_ptr<models::SequentialRecommender>& m2,
    const char* label) {
  metrics::SetEnabled(true);
  const uint64_t rebuilds_before = ServeMetrics().stale_rebuilds.Value();
  const int user = TinySplit().test[0].user;
  const auto& bootstrap = History(0);

  SessionStore store(0);
  auto v1_state = store.Acquire(user, &bootstrap, m1, 1);
  auto v1_scores = m1->ScoreFromState(*v1_state);
  ASSERT_EQ(v1_scores, m1->ScoreAll(user, bootstrap)) << label;

  // Touch under version 2: the stale entry must be rebuilt with m2.
  auto v2_state = store.Acquire(user, &bootstrap, m2, 2);
  ASSERT_NE(v2_state.get(), v1_state.get()) << label;
  auto rebuilt = m2->ScoreFromState(*v2_state);
  ASSERT_EQ(rebuilt, m2->ScoreAll(user, bootstrap)) << label;
  ASSERT_NE(rebuilt, v1_scores) << label;  // weights really changed

  // The pre-reload handle still pins a usable state for its own model —
  // an in-flight batch keeps scoring the version it started on.
  ASSERT_EQ(m1->ScoreFromState(*v1_state), v1_scores) << label;
  EXPECT_EQ(ServeMetrics().stale_rebuilds.Value(), rebuilds_before + 1)
      << label;
  metrics::SetEnabled(false);
}

TEST(SessionStoreReloadTest, StaleRebuildMatchesFreshReplayGru) {
  ExpectStaleRebuildMatchesFreshReplay(GruModel(1), GruModel(2), "gru");
}

TEST(SessionStoreReloadTest, StaleRebuildMatchesFreshReplayCauser) {
  auto m1 = std::make_shared<core::CauserModel>(TinyCauserConfig(1));
  auto m2 = std::make_shared<core::CauserModel>(TinyCauserConfig(2));
  ExpectStaleRebuildMatchesFreshReplay(m1, m2, "causer");
}

TEST(SessionStoreReloadTest, LruEvictionAndPinningAcrossVersions) {
  auto m1 = GruModel(1);
  auto m2 = GruModel(2);
  SessionStore store(2);
  const auto& bootstrap = History(0);

  // Fill the store; keep user 100 pinned across the version bump.
  auto pinned = store.Acquire(100, &bootstrap, m1, 1);
  store.Acquire(200, &bootstrap, m1, 1);
  ASSERT_EQ(store.size(), 2);

  // A third user under the new version evicts the unpinned entry, never
  // the pinned one.
  store.Acquire(300, &bootstrap, m2, 2);
  ASSERT_EQ(store.size(), 2);
  auto expected_pinned = m1->ScoreFromState(*pinned);
  ASSERT_EQ(expected_pinned, m1->ScoreAll(100, bootstrap));

  // Touching the pinned user under version 2 rebuilds its entry; the old
  // handle keeps the version-1 state alive and bit-stable regardless.
  auto rebuilt = store.Acquire(100, &bootstrap, m2, 2);
  ASSERT_NE(rebuilt.get(), pinned.get());
  ASSERT_EQ(m2->ScoreFromState(*rebuilt), m2->ScoreAll(100, bootstrap));
  ASSERT_EQ(m1->ScoreFromState(*pinned), expected_pinned);
}

void ExpectReloadConsistencyAtThreadCount(int num_threads) {
  auto a = GruModel(1);
  auto b = GruModel(2);
  ServingConfig sc;
  sc.top_k = 5;
  sc.batch_max = 8;
  sc.max_sessions = 4;  // LRU pressure: rebuilds interleave with reloads
  ServingEngine engine(a, sc);

  auto run_pass = [&](uint64_t expect_version,
                      models::SequentialRecommender& expect_model) {
    std::vector<std::thread> threads;
    for (int t = 0; t < num_threads; ++t) {
      threads.emplace_back([&, t] {
        for (int round = 0; round < 6; ++round) {
          const int index =
              (t + round) % static_cast<int>(TinySplit().test.size());
          Request request;
          request.user = TinySplit().test[index].user;
          request.bootstrap = &History(index);
          Response response = engine.Handle(request);
          ASSERT_EQ(response.model_version, expect_version);
          ExpectTopKOfModel(response, expect_model, request.user,
                            History(index), "reload consistency");
        }
      });
    }
    for (auto& thread : threads) thread.join();
  };

  run_pass(1, *a);
  ASSERT_EQ(engine.Reload(b), 2u);
  run_pass(2, *b);  // every surviving session entry is stale here
  ASSERT_EQ(engine.Reload(a), 3u);
  run_pass(3, *a);
}

TEST(SessionStoreReloadTest, StaleSessionsRebuiltConsistentlyOneWorker) {
  ExpectReloadConsistencyAtThreadCount(1);
}

TEST(SessionStoreReloadTest, StaleSessionsRebuiltConsistentlyEightWorkers) {
  ExpectReloadConsistencyAtThreadCount(8);
}

// ---- Server: kReload frames and the slow-loris guard ------------------

TEST(ServerReloadTest, WireReloadOpSwapsModelAndAcksNewVersion) {
  auto a = GruModel(1);
  auto b = GruModel(2);
  ServingConfig sc;
  sc.top_k = 5;
  ServingEngine engine(a, sc);
  ServerConfig server_config;
  server_config.on_reload = [&] { return engine.Reload(b) != 0; };
  Server server(engine, server_config);
  ASSERT_TRUE(server.Start());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  wire::RequestFrame reload;
  reload.request_id = 7;
  reload.op = wire::Op::kReload;
  wire::ResponseFrame ack;
  ASSERT_TRUE(client.Call(reload, &ack));
  EXPECT_EQ(ack.request_id, 7u);
  EXPECT_EQ(ack.status, wire::Status::kOk);
  EXPECT_EQ(ack.model_version, 2u);

  // The connection survives the control frame and now serves version 2.
  wire::RequestFrame score;
  score.request_id = 8;
  score.user = TinySplit().test[0].user;
  for (const auto& step : History(0)) {
    score.bootstrap.emplace_back(step.items.begin(), step.items.end());
  }
  wire::ResponseFrame response;
  ASSERT_TRUE(client.Call(score, &response));
  ASSERT_EQ(response.status, wire::Status::kOk);
  EXPECT_EQ(response.model_version, 2u);
  auto scores = b->ScoreAll(score.user, History(0));
  auto ranked = eval::TopK(scores, static_cast<int>(response.items.size()));
  for (size_t j = 0; j < ranked.size(); ++j) {
    EXPECT_EQ(response.items[j], ranked[j]);
    EXPECT_EQ(response.scores[j], scores[ranked[j]]);
  }

  // A malformed reload (payload attached) and a hook failure both ack
  // kReloadFailed without killing the connection.
  wire::RequestFrame bad = reload;
  bad.request_id = 9;
  bad.append = {1};
  ASSERT_TRUE(client.Call(bad, &ack));
  EXPECT_EQ(ack.status, wire::Status::kReloadFailed);
  server.Shutdown();
}

TEST(ServerReloadTest, ReloadWithoutHookAcksReloadFailed) {
  ServingConfig sc;
  ServingEngine engine(GruModel(1), sc);
  Server server(engine, ServerConfig{});
  ASSERT_TRUE(server.Start());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  wire::RequestFrame reload;
  reload.op = wire::Op::kReload;
  wire::ResponseFrame ack;
  ASSERT_TRUE(client.Call(reload, &ack));
  EXPECT_EQ(ack.status, wire::Status::kReloadFailed);
  EXPECT_EQ(ack.model_version, 1u);
  server.Shutdown();
}

TEST(ServerReloadTest, IdleConnectionClosedBySlowLorisGuard) {
  metrics::SetEnabled(true);
  const uint64_t timeouts_before =
      CounterValue("server.conn_idle_timeout_total");
  ServingConfig sc;
  ServingEngine engine(GruModel(1), sc);
  ServerConfig server_config;
  server_config.idle_timeout_ms = 100;
  Server server(engine, server_config);
  ASSERT_TRUE(server.Start());

  // A slow-loris peer: connects, sends nothing. The read deadline must
  // close it — observed here as EOF on our side.
  const int fd = net::ConnectTcp("127.0.0.1", server.port());
  ASSERT_GE(fd, 0);
  std::vector<uint8_t> payload;
  net::ReadError error = net::ReadError::kNone;
  EXPECT_FALSE(net::ReadFrame(fd, &payload, wire::kMaxFrameBytes, &error));
  EXPECT_EQ(error, net::ReadError::kClosed);
  net::CloseSocket(fd);
  EXPECT_EQ(CounterValue("server.conn_idle_timeout_total"),
            timeouts_before + 1);

  // A live connection with traffic inside the deadline is unaffected.
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));
  wire::RequestFrame request;
  request.user = TinySplit().test[0].user;
  for (const auto& step : History(0)) {
    request.bootstrap.emplace_back(step.items.begin(), step.items.end());
  }
  wire::ResponseFrame response;
  ASSERT_TRUE(client.Call(request, &response));
  EXPECT_EQ(response.status, wire::Status::kOk);
  server.Shutdown();
  metrics::SetEnabled(false);
}

// ---- Client retry ------------------------------------------------------

TEST(ClientRetryTest, RetriesThroughTornFrameWithinDeadline) {
  ServingConfig sc;
  sc.top_k = 3;
  auto model = GruModel(1);
  ServingEngine engine(model, sc);
  Server server(engine, ServerConfig{});
  ASSERT_TRUE(server.Start());
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()));

  wire::RequestFrame request;
  request.request_id = 1;
  request.user = TinySplit().test[0].user;
  request.deadline_ms = 5000;
  for (const auto& step : History(0)) {
    request.bootstrap.emplace_back(step.items.begin(), step.items.end());
  }

  // The first WriteFrame in this single-client exchange is ours; tearing
  // it breaks the connection mid-frame, and CallWithRetry must reconnect
  // and resend (idempotent scoring) rather than surface the failure.
  fault::Arm("net.torn_write", 1, 1);
  wire::ResponseFrame response;
  EXPECT_TRUE(client.CallWithRetry(request, &response));
  fault::DisarmAll();
  EXPECT_EQ(response.status, wire::Status::kOk);
  EXPECT_GE(response.attempts, 2);

  // A plain follow-up Call on the recovered connection still works (the
  // retry path must not leave a poisoned receive timeout behind).
  request.request_id = 2;
  EXPECT_TRUE(client.Call(request, &response));
  EXPECT_EQ(response.status, wire::Status::kOk);
  server.Shutdown();
}

TEST(ClientRetryTest, DeadlineBudgetBoundsRetries) {
  // No listener: every attempt fails to connect. The deadline budget must
  // cut the retry loop short well before max_attempts' worth of backoff.
  Client client;
  EXPECT_FALSE(client.Connect("127.0.0.1", 1));  // port 1: nothing listens
  wire::RequestFrame request;
  request.deadline_ms = 100;
  RetryPolicy policy;
  policy.max_attempts = 1000;
  policy.initial_backoff_ms = 40;
  policy.max_backoff_ms = 40;
  const auto start = std::chrono::steady_clock::now();
  wire::ResponseFrame response;
  EXPECT_FALSE(client.CallWithRetry(request, &response, policy));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GE(response.attempts, 1);
  EXPECT_LT(response.attempts, 10);
  EXPECT_LT(elapsed, 2.0);  // nowhere near 1000 attempts of backoff
}

}  // namespace
}  // namespace causer::serve
