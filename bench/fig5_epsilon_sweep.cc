// Reproduces Fig. 5: influence of the causal filter threshold epsilon on
// NDCG@5 for Baby and Epinions, GRU and LSTM backbones. Paper finding: a
// moderate epsilon is best (small = noisy history kept, large = too little
// history left).

#include <cstdio>

#include "bench_util.h"

int main() {
  using causer::Table;
  using namespace causer;
  bench::PrintHeader("Fig. 5: influence of the threshold epsilon (NDCG@5, %)",
                     "paper Fig. 5");

  const std::vector<float> epsilons = {0.1f, 0.2f, 0.3f, 0.4f, 0.5f,
                                       0.6f, 0.7f, 0.8f, 0.9f};
  for (auto which : {data::PaperDataset::kBaby, data::PaperDataset::kEpinions}) {
    auto dataset = data::MakeDataset(data::SpecFor(which));
    auto split = data::LeaveLastOut(dataset);
    std::printf("\n%s\n", dataset.name.c_str());
    Table t({"epsilon", "Causer (GRU)", "Causer (LSTM)"});
    for (float eps : epsilons) {
      std::vector<std::string> row = {Table::Fmt(eps, 1)};
      for (auto backbone : {core::Backbone::kGru, core::Backbone::kLstm}) {
        auto cfg = bench::TunedCauserConfig(dataset, backbone);
        cfg.epsilon = eps;
        core::CauserModel model(cfg);
        auto run = bench::RunCauser(model, split, bench::CauserTrainConfig());
        row.push_back(Table::Fmt(run.ndcg, 2));
        std::fprintf(stderr, "[fig5] %s eps=%.1f %s NDCG %.2f\n",
                     dataset.name.c_str(), eps, run.name.c_str(), run.ndcg);
      }
      t.AddRow(row);
    }
    std::printf("%s", t.ToString().c_str());
  }
  std::printf(
      "Shape check: the curve is unimodal with a moderate optimum,\n"
      "trading history coverage against causal purity (paper Fig. 5).\n");
  return 0;
}
