// Online serving benchmark: incremental session state vs. full-history
// replay, and micro-batched GEMM + fused top-k scoring vs. per-request
// ScoreAll.
//
// Three sections, all single-process:
//   (1) incremental: advancing a cached session one interaction at a time
//       (AdvanceState + ScoreFromState) vs. re-scoring the whole history
//       with ScoreAll at every event, at history length 50 — for GRU4Rec
//       (the gated number) and Causer (reported);
//   (2) batched: 32 concurrent users scored through the engine's batched
//       [B,d] x [V,d]^T GEMM + fused top-k path vs. 32 independent
//       ScoreAll + eval::TopK calls, plus the unbatched-incremental
//       middle ground (cached sessions, per-request scoring);
//   (3) latency: p50/p99 and QPS through the micro-batcher (Handle) from
//       4 concurrent client threads;
//   (4) quant: int8 quantized GEMM + fp32 re-rank (--quantize=int8) vs
//       the fp32 engine on a serving-sized catalog (4096 items, d=64),
//       with the item-table memory ratio. Exactness is checked with
//       rerank_k = catalog (provably identical to fp32) before timing
//       the rerank_k=64 configuration;
//   (5) sharding: one single-request score against a 1M-item catalog
//       (65536 in --smoke) through MatMulTopKSharded at S in {1,2,4,8},
//       1 and 8 threads, each checked bit-identical to the unsharded
//       kernel. Speedup gates follow bench_parallel's convention: the
//       exactness flag always gates; the throughput gate is enforced only
//       when the host has >= 2 hardware threads (`gate_enforced` in the
//       JSON records which ran) — bench_sharding is the deep-dive bench
//       for this section.
//
// Every timed path is checked bit-identical to its reference first; a
// mismatch fails the run. Writes a BENCH_serving.json report (path =
// argv[last], default ./BENCH_serving.json).
//
// `--smoke` shrinks the timed work for CI and relaxes the >=5x full-run
// gates to >=1.5x and the >=2x int8 gate to >=1.3x (shared-runner noise),
// keeping them as the exit code. The >=3.5x memory-ratio gate is exact
// arithmetic and never relaxed.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "eval/metrics.h"
#include "serve/engine.h"
#include "tensor/kernels.h"
#include "tensor/quant.h"

namespace {

using namespace causer;

constexpr int kHistoryLen = 50;
constexpr int kBatchUsers = 32;
constexpr int kNumItems = 500;

/// Deterministic synthetic history: 2 items per step, length `length`.
std::vector<data::Step> SyntheticHistory(int user, int num_items,
                                         int length) {
  std::vector<data::Step> history(length);
  for (int t = 0; t < length; ++t) {
    history[t].items = {(user * 7 + t * 3) % num_items,
                        (user * 11 + t * 5) % num_items};
  }
  return history;
}

/// Checks the incremental path bit-identical to full replay at every prefix
/// length, then times both. Returns {replay_us, incremental_us, speedup}.
struct IncrementalResult {
  double replay_us_per_event = 0.0;
  double incremental_us_per_event = 0.0;
  double speedup = 0.0;
  bool bit_identical = true;
};

IncrementalResult RunIncremental(models::SequentialRecommender& model,
                                 int user, int repeats) {
  const auto history = SyntheticHistory(user, model.config().num_items,
                                        kHistoryLen);
  IncrementalResult result;

  // Correctness first: every intermediate ScoreFromState must equal
  // ScoreAll over the appended prefix, float for float.
  {
    auto state = model.NewSessionState(user);
    std::vector<data::Step> prefix;
    for (const auto& step : history) {
      model.AdvanceState(*state, step);
      prefix.push_back(step);
      if (model.ScoreFromState(*state) != model.ScoreAll(user, prefix)) {
        result.bit_identical = false;
        break;
      }
    }
  }

  double best_replay = 1e30, best_incremental = 1e30;
  float sink = 0.0f;
  for (int r = 0; r < repeats; ++r) {
    std::vector<data::Step> prefix;
    Stopwatch sw;
    for (const auto& step : history) {
      prefix.push_back(step);
      sink += model.ScoreAll(user, prefix)[0];
    }
    best_replay = std::min(best_replay, sw.ElapsedSeconds());
  }
  for (int r = 0; r < repeats; ++r) {
    auto state = model.NewSessionState(user);
    Stopwatch sw;
    for (const auto& step : history) {
      model.AdvanceState(*state, step);
      sink += model.ScoreFromState(*state)[0];
    }
    best_incremental = std::min(best_incremental, sw.ElapsedSeconds());
  }
  if (sink == 12345.678f) std::printf("unreachable\n");
  result.replay_us_per_event = best_replay / kHistoryLen * 1e6;
  result.incremental_us_per_event = best_incremental / kHistoryLen * 1e6;
  result.speedup = best_replay / best_incremental;
  return result;
}

models::ModelConfig ServingModelConfig() {
  models::ModelConfig config;
  config.num_users = kBatchUsers * 2;
  config.num_items = kNumItems;
  config.embedding_dim = 32;
  config.hidden_dim = 32;
  // The window must cover the 50-step histories: at the cap every advance
  // slides the window and forces an O(window) rebuild, which is the replay
  // path by another name.
  config.max_history = 64;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  bench::PrintHeader(
      "Online serving: incremental sessions, batched GEMM + fused top-k",
      "Wang et al., ICDE 2023 (serving engine; no paper figure)");
  SetDefaultThreads(1);  // engine-path numbers, not parallel scaling
  const int repeats = smoke ? 3 : 5;
  const double gate = smoke ? 1.5 : 5.0;
  bool ok = true;

  // -- Section 1: incremental advance vs full replay ----------------------
  std::printf("Incremental vs full replay (history %d, per event):\n",
              kHistoryLen);
  std::printf("%-16s %12s %12s %9s %6s\n", "model", "replay us",
              "incremental", "speedup", "exact");
  models::Gru4Rec gru(ServingModelConfig());
  IncrementalResult gru_inc = RunIncremental(gru, 0, repeats);
  ok = ok && gru_inc.bit_identical;
  std::printf("%-16s %12.1f %12.1f %8.2fx %6s\n", "GRU4Rec",
              gru_inc.replay_us_per_event, gru_inc.incremental_us_per_event,
              gru_inc.speedup, gru_inc.bit_identical ? "yes" : "NO");

  // Causer rides on a small real dataset (its config needs clusters and
  // item features); reported, not gated — its grouped scoring dominates
  // both paths, so the backbone saving shows up smaller.
  data::DatasetSpec causer_spec = data::TinySpec();
  causer_spec.num_users = 64;
  causer_spec.num_items = 120;
  data::Dataset causer_data = data::MakeDataset(causer_spec);
  core::CauserConfig causer_config =
      core::DefaultCauserConfig(causer_data, core::Backbone::kGru);
  causer_config.base.embedding_dim = 16;
  causer_config.base.hidden_dim = 16;
  causer_config.encoder_hidden = 16;
  causer_config.cluster_dim = 16;
  causer_config.base.max_history = 64;
  core::CauserModel causer(causer_config);
  IncrementalResult causer_inc = RunIncremental(causer, 0, repeats);
  ok = ok && causer_inc.bit_identical;
  std::printf("%-16s %12.1f %12.1f %8.2fx %6s\n", "Causer",
              causer_inc.replay_us_per_event,
              causer_inc.incremental_us_per_event, causer_inc.speedup,
              causer_inc.bit_identical ? "yes" : "NO");

  // -- Section 2: batched engine scoring vs per-request ScoreAll ----------
  std::vector<std::vector<data::Step>> histories;
  for (int u = 0; u < kBatchUsers; ++u) {
    histories.push_back(SyntheticHistory(u, kNumItems, kHistoryLen));
  }
  serve::ServingConfig sc;
  sc.top_k = 10;
  serve::ServingEngine engine(gru, sc);
  std::vector<serve::Request> requests(kBatchUsers);
  for (int u = 0; u < kBatchUsers; ++u) {
    requests[u].user = u;
    requests[u].bootstrap = &histories[u];
  }
  // Warm the session store (bootstrap replay happens once, not per round),
  // and check the engine's batched responses against ScoreAll + TopK.
  auto responses = engine.ScoreBatch(requests);
  bool batch_exact = true;
  for (int u = 0; u < kBatchUsers; ++u) {
    auto scores = gru.ScoreAll(u, histories[u]);
    auto ranked = eval::TopK(scores, sc.top_k);
    batch_exact = batch_exact &&
                  responses[u].items == ranked &&
                  responses[u].scores.size() == ranked.size();
    for (size_t j = 0; batch_exact && j < ranked.size(); ++j) {
      batch_exact = responses[u].scores[j] == scores[ranked[j]];
    }
  }
  ok = ok && batch_exact;

  double best_per_request = 1e30, best_unbatched_inc = 1e30;
  double best_batched = 1e30;
  float sink = 0.0f;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch sw;
    for (int u = 0; u < kBatchUsers; ++u) {
      auto scores = gru.ScoreAll(u, histories[u]);
      sink += static_cast<float>(eval::TopK(scores, sc.top_k)[0]);
    }
    best_per_request = std::min(best_per_request, sw.ElapsedSeconds());
  }
  for (int r = 0; r < repeats; ++r) {
    Stopwatch sw;
    for (int u = 0; u < kBatchUsers; ++u) {
      serve::Request one = requests[u];
      sink += static_cast<float>(engine.ScoreBatch({one})[0].items[0]);
    }
    best_unbatched_inc = std::min(best_unbatched_inc, sw.ElapsedSeconds());
  }
  for (int r = 0; r < repeats; ++r) {
    Stopwatch sw;
    sink += static_cast<float>(engine.ScoreBatch(requests)[0].items[0]);
    best_batched = std::min(best_batched, sw.ElapsedSeconds());
  }
  if (sink == 12345.678f) std::printf("unreachable\n");
  const double batched_speedup = best_per_request / best_batched;
  std::printf(
      "\nBatch scoring (%d users, history %d, top-%d, per request):\n",
      kBatchUsers, kHistoryLen, sc.top_k);
  std::printf("  per-request ScoreAll + TopK : %9.1f us\n",
              best_per_request / kBatchUsers * 1e6);
  std::printf("  unbatched incremental       : %9.1f us\n",
              best_unbatched_inc / kBatchUsers * 1e6);
  std::printf("  batched GEMM + fused top-k  : %9.1f us   (%.2fx vs "
              "per-request, exact %s)\n",
              best_batched / kBatchUsers * 1e6, batched_speedup,
              batch_exact ? "yes" : "NO");

  // -- Section 3: latency through the micro-batcher -----------------------
  const int clients = 4;
  const int per_client = smoke ? 50 : 400;
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<int> counter{0};
  Stopwatch wall;
  {
    std::vector<std::thread> workers;
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        for (int i = 0; i < per_client; ++i) {
          const serve::Request& request =
              requests[counter.fetch_add(1) % kBatchUsers];
          Stopwatch sw;
          engine.Handle(request);
          latencies[c].push_back(sw.ElapsedSeconds());
        }
      });
    }
    for (auto& worker : workers) worker.join();
  }
  const double wall_seconds = wall.ElapsedSeconds();
  std::vector<double> all;
  for (const auto& local : latencies)
    all.insert(all.end(), local.begin(), local.end());
  std::sort(all.begin(), all.end());
  const double p50 = all[all.size() / 2];
  const double p99 = all[static_cast<size_t>(0.99 * (all.size() - 1))];
  const double qps = all.size() / wall_seconds;
  std::printf(
      "\nMicro-batcher latency (%d clients, %zu requests, batch-max %d, "
      "batch-wait %dus):\n",
      clients, all.size(), sc.batch_max, sc.batch_wait_us);
  std::printf("  p50 %.3f ms   p99 %.3f ms   %.0f req/s\n", p50 * 1e3,
              p99 * 1e3, qps);

  // -- Section 4: int8 quantized scoring vs fp32 --------------------------
  // A serving-sized catalog: the 500-item model above fits its whole score
  // pass in L2, which understates the memory-bandwidth win int8 exists for.
  constexpr int kQuantItems = 4096;
  constexpr int kQuantDim = 128;
  models::ModelConfig qconfig = ServingModelConfig();
  qconfig.num_items = kQuantItems;
  qconfig.embedding_dim = kQuantDim;
  qconfig.hidden_dim = kQuantDim;
  models::Gru4Rec qmodel(qconfig);
  std::vector<std::vector<data::Step>> qhistories;
  for (int u = 0; u < kBatchUsers; ++u) {
    qhistories.push_back(SyntheticHistory(u, kQuantItems, kHistoryLen));
  }
  std::vector<serve::Request> qrequests(kBatchUsers);
  for (int u = 0; u < kBatchUsers; ++u) {
    qrequests[u].user = u;
    qrequests[u].bootstrap = &qhistories[u];
  }
  serve::ServingConfig fp32_sc;
  fp32_sc.top_k = 10;
  serve::ServingEngine fp32_engine(qmodel, fp32_sc);
  serve::ServingConfig int8_sc = fp32_sc;
  int8_sc.quantize_int8 = true;
  int8_sc.rerank_k = 64;
  serve::ServingEngine int8_engine(qmodel, int8_sc);

  // Exactness: with rerank_k >= catalog every candidate is re-scored in
  // fp32, so the int8 engine must return the fp32 engine's exact bits.
  bool quant_exact = true;
  {
    serve::ServingConfig full_sc = fp32_sc;
    full_sc.quantize_int8 = true;
    full_sc.rerank_k = kQuantItems;
    serve::ServingEngine full_rerank(qmodel, full_sc);
    auto fp32_responses = fp32_engine.ScoreBatch(qrequests);
    auto int8_responses = full_rerank.ScoreBatch(qrequests);
    for (int u = 0; u < kBatchUsers; ++u) {
      quant_exact = quant_exact &&
                    fp32_responses[u].items == int8_responses[u].items &&
                    fp32_responses[u].scores == int8_responses[u].scores;
    }
    ok = ok && quant_exact;
  }

  int8_engine.ScoreBatch(qrequests);  // warm the int8 engine's sessions
  double best_fp32 = 1e30, best_int8 = 1e30;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch sw;
    sink += static_cast<float>(fp32_engine.ScoreBatch(qrequests)[0].items[0]);
    best_fp32 = std::min(best_fp32, sw.ElapsedSeconds());
  }
  for (int r = 0; r < repeats; ++r) {
    Stopwatch sw;
    sink += static_cast<float>(int8_engine.ScoreBatch(qrequests)[0].items[0]);
    best_int8 = std::min(best_int8, sw.ElapsedSeconds());
  }
  if (sink == 54321.678f) std::printf("unreachable\n");
  const double quant_speedup = best_fp32 / best_int8;
  const tensor::QuantizedMatrix* qtable = qmodel.QuantizedItemTable();
  const double fp32_table_bytes =
      static_cast<double>(kQuantItems) * kQuantDim * sizeof(float);
  const double memory_ratio =
      qtable ? fp32_table_bytes / static_cast<double>(qtable->MemoryBytes())
             : 0.0;
  const double quant_gate = smoke ? 1.3 : 2.0;
  const double memory_gate = 3.5;
  std::printf(
      "\nInt8 quantized scoring (%d users, catalog %d, d=%d, rerank-k %d, "
      "per batch):\n",
      kBatchUsers, kQuantItems, kQuantDim, int8_sc.rerank_k);
  std::printf("  fp32 GEMM + fused top-k     : %9.1f us\n", best_fp32 * 1e6);
  std::printf("  int8 GEMM + fp32 re-rank    : %9.1f us   (%.2fx, exact via "
              "full re-rank %s)\n",
              best_int8 * 1e6, quant_speedup, quant_exact ? "yes" : "NO");
  std::printf("  item table %9.0f -> %7.0f bytes  (%.2fx smaller)\n",
              fp32_table_bytes,
              qtable ? static_cast<double>(qtable->MemoryBytes()) : 0.0,
              memory_ratio);

  // -- Section 5: sharded scoring on a million-item catalog ---------------
  const int hardware = std::max(
      1, static_cast<int>(std::thread::hardware_concurrency()));
  const int shard_catalog = smoke ? 65536 : 1000000;
  constexpr int kShardDim = 64;
  std::vector<float> shard_table(static_cast<size_t>(shard_catalog) *
                                 kShardDim);
  std::vector<float> shard_query(kShardDim);
  {
    // Cheap deterministic fill; the kernel's cost is shape-driven.
    uint64_t h = 0x2545f4914f6cdd1dull;
    for (auto& v : shard_table) {
      h ^= h << 13; h ^= h >> 7; h ^= h << 17;
      v = static_cast<float>(static_cast<int>(h % 2001) - 1000) / 1000.0f;
    }
    for (auto& v : shard_query) {
      h ^= h << 13; h ^= h >> 7; h ^= h << 17;
      v = static_cast<float>(static_cast<int>(h % 2001) - 1000) / 1000.0f;
    }
  }
  std::vector<tensor::kernels::TopKEntry> shard_reference(sc.top_k);
  std::vector<tensor::kernels::TopKEntry> shard_out(sc.top_k);
  tensor::kernels::MatMulTopK(shard_query.data(), shard_table.data(), 1,
                              kShardDim, shard_catalog, sc.top_k,
                              shard_reference.data());
  const double shard_base = [&] {
    double best = 1e30;
    for (int r = 0; r < repeats; ++r) {
      Stopwatch sw;
      tensor::kernels::MatMulTopK(shard_query.data(), shard_table.data(), 1,
                                  kShardDim, shard_catalog, sc.top_k,
                                  shard_out.data());
      best = std::min(best, sw.ElapsedSeconds());
    }
    return best;
  }();
  bool shard_exact = true;
  double shard_best_speedup = 0.0;
  std::vector<std::string> shard_rows;
  std::printf(
      "\nSharded scoring (1 request, catalog %d, d=%d, top-%d, unsharded "
      "%.2f ms):\n",
      shard_catalog, kShardDim, sc.top_k, shard_base * 1e3);
  for (int threads : {1, 8}) {
    SetDefaultThreads(threads);
    for (int shards : {2, 4, 8}) {
      double best = 1e30;
      for (int r = 0; r < repeats; ++r) {
        Stopwatch sw;
        tensor::kernels::MatMulTopKSharded(
            shard_query.data(), shard_table.data(), 1, kShardDim,
            shard_catalog, sc.top_k, shards, shard_out.data());
        best = std::min(best, sw.ElapsedSeconds());
      }
      bool exact = shard_out.size() == shard_reference.size();
      for (size_t e = 0; exact && e < shard_reference.size(); ++e) {
        exact = shard_out[e].index == shard_reference[e].index &&
                std::memcmp(&shard_out[e].score, &shard_reference[e].score,
                            sizeof(float)) == 0;
      }
      shard_exact = shard_exact && exact;
      const double speedup = shard_base / best;
      if (threads == 8) {
        shard_best_speedup = std::max(shard_best_speedup, speedup);
      }
      std::printf("  S=%d %d thread%s : %9.2f ms  (%5.2fx, exact %s)\n",
                  shards, threads, threads == 1 ? " " : "s", best * 1e3,
                  speedup, exact ? "yes" : "NO");
      bench::JsonObject row;
      row.Set("shards", shards)
          .Set("threads", threads)
          .Set("ms", best * 1e3)
          .Set("speedup_vs_unsharded_1t", speedup)
          .Set("exact", exact);
      shard_rows.push_back(row.Str());
    }
  }
  SetDefaultThreads(1);
  ok = ok && shard_exact;
  const double shard_gate = smoke ? 1.5 : 3.0;
  const bool shard_gate_enforced = hardware >= 2;

  // -- Report -------------------------------------------------------------
  bench::JsonObject incremental_row;
  incremental_row.Set("history_len", kHistoryLen)
      .Set("gru4rec_replay_us_per_event", gru_inc.replay_us_per_event)
      .Set("gru4rec_incremental_us_per_event",
           gru_inc.incremental_us_per_event)
      .Set("gru4rec_speedup", gru_inc.speedup)
      .Set("causer_replay_us_per_event", causer_inc.replay_us_per_event)
      .Set("causer_incremental_us_per_event",
           causer_inc.incremental_us_per_event)
      .Set("causer_speedup", causer_inc.speedup)
      .Set("bit_identical",
           gru_inc.bit_identical && causer_inc.bit_identical);
  bench::JsonObject batch_row;
  batch_row.Set("users", kBatchUsers)
      .Set("catalog", kNumItems)
      .Set("top_k", sc.top_k)
      .Set("per_request_scoreall_us", best_per_request / kBatchUsers * 1e6)
      .Set("unbatched_incremental_us",
           best_unbatched_inc / kBatchUsers * 1e6)
      .Set("batched_us", best_batched / kBatchUsers * 1e6)
      .Set("batched_speedup", batched_speedup)
      .Set("responses_exact", batch_exact);
  bench::JsonObject latency_row;
  latency_row.Set("clients", clients)
      .Set("requests", static_cast<int>(all.size()))
      .Set("batch_max", sc.batch_max)
      .Set("batch_wait_us", sc.batch_wait_us)
      .Set("p50_ms", p50 * 1e3)
      .Set("p99_ms", p99 * 1e3)
      .Set("qps", qps);
  bench::JsonObject quant_row;
  quant_row.Set("users", kBatchUsers)
      .Set("catalog", kQuantItems)
      .Set("dim", kQuantDim)
      .Set("rerank_k", int8_sc.rerank_k)
      .Set("fp32_batch_us", best_fp32 * 1e6)
      .Set("int8_batch_us", best_int8 * 1e6)
      .Set("int8_speedup", quant_speedup)
      .Set("table_memory_ratio", memory_ratio)
      .Set("full_rerank_exact", quant_exact)
      .Set("gate_min_speedup", quant_gate)
      .Set("gate_min_memory_ratio", memory_gate);
  bench::JsonObject sharding_row;
  sharding_row.Set("catalog", shard_catalog)
      .Set("dim", kShardDim)
      .Set("rows", 1)
      .Set("top_k", sc.top_k)
      .Set("unsharded_1t_ms", shard_base * 1e3)
      .SetRaw("points", bench::JsonArray(shard_rows))
      .Set("best_speedup_8t", shard_best_speedup)
      .Set("bit_identical", shard_exact)
      .Set("hardware_threads", hardware)
      .Set("gate_enforced", shard_gate_enforced)
      .Set("gate_min_speedup", shard_gate);
  bench::JsonObject report;
  report.Set("bench", std::string("bench_serving"))
      .Set("smoke", smoke)
      .Set("threads", 1)
      .SetRaw("incremental_vs_replay", incremental_row.Str())
      .SetRaw("batched_vs_per_request", batch_row.Str())
      .SetRaw("latency", latency_row.Str())
      .SetRaw("quant", quant_row.Str())
      .SetRaw("sharding", sharding_row.Str())
      .Set("gate_min_speedup", gate);
  if (!bench::WriteTextFile(out_path, report.Str())) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nreport -> %s\n", out_path.c_str());

  if (!ok) {
    std::fprintf(stderr,
                 "FATAL: an equivalence check failed (see NO rows above)\n");
    return 1;
  }
  if (gru_inc.speedup < gate) {
    std::fprintf(stderr,
                 "FATAL: incremental speedup %.2fx below the %.1fx gate\n",
                 gru_inc.speedup, gate);
    return 1;
  }
  if (batched_speedup < gate) {
    std::fprintf(stderr,
                 "FATAL: batched speedup %.2fx below the %.1fx gate\n",
                 batched_speedup, gate);
    return 1;
  }
  if (quant_speedup < quant_gate) {
    std::fprintf(stderr,
                 "FATAL: int8 speedup %.2fx below the %.1fx gate\n",
                 quant_speedup, quant_gate);
    return 1;
  }
  if (memory_ratio < memory_gate) {
    std::fprintf(stderr,
                 "FATAL: item-table memory ratio %.2fx below the %.1fx gate\n",
                 memory_ratio, memory_gate);
    return 1;
  }
  if (shard_gate_enforced && shard_best_speedup < shard_gate) {
    std::fprintf(stderr,
                 "FATAL: sharded scoring speedup %.2fx below the %.1fx "
                 "gate\n",
                 shard_best_speedup, shard_gate);
    return 1;
  }
  return 0;
}
