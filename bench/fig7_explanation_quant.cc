// Reproduces Fig. 7: quantitative evaluation of recommendation
// explanations on the Baby dataset. The paper hand-labels causal items in
// 793 test samples (~1.8 causes each); our stand-in labels come from the
// generator's ground-truth causes (see DESIGN.md). Compared systems:
// Causer (alpha * What), Causer(-att) (What only), Causer(-causal)
// (attention only), each trained as its own model, explaining with top-3
// history items under F1 and NDCG — exactly the paper's protocol.

#include <cstdio>

#include "bench_util.h"
#include "core/explainer.h"
#include "eval/explanation_eval.h"

int main() {
  using causer::Table;
  using namespace causer;
  bench::PrintHeader(
      "Fig. 7: quantitative explanation evaluation (Baby, top-3, %)",
      "paper Fig. 7. Expected shape: Causer > Causer(-att) > Causer(-causal)");

  auto dataset = data::MakeDataset(data::SpecFor(data::PaperDataset::kBaby));
  auto split = data::LeaveLastOut(dataset);

  Rng rng(97);
  auto examples = eval::BuildExplanationSet(split.test, dataset,
                                            /*max_examples=*/800, rng);
  std::printf("Explanation dataset: %zu samples\n", examples.size());

  Table t({"System", "Backbone", "F1@3", "NDCG@3"});
  for (auto backbone : {core::Backbone::kGru, core::Backbone::kLstm}) {
    const char* bb = backbone == core::Backbone::kGru ? "GRU" : "LSTM";

    // Full model explains with alpha * What.
    auto full_cfg = bench::TunedCauserConfig(dataset, backbone);
    core::CauserModel full(full_cfg);
    core::TrainCauser(full, split, bench::CauserTrainConfig());
    auto r_full = eval::EvaluateExplanations(
        core::MakeCauserExplainer(full, core::ExplainMode::kFull), examples, 3);

    // -att variant explains with What only.
    auto na_cfg = bench::TunedCauserConfig(dataset, backbone);
    na_cfg.use_attention = false;
    core::CauserModel no_att(na_cfg);
    core::TrainCauser(no_att, split, bench::CauserTrainConfig());
    auto r_causal = eval::EvaluateExplanations(
        core::MakeCauserExplainer(no_att, core::ExplainMode::kCausal),
        examples, 3);

    // -causal variant explains with attention weights only.
    auto nc_cfg = bench::TunedCauserConfig(dataset, backbone);
    nc_cfg.use_causal = false;
    core::CauserModel no_causal(nc_cfg);
    core::TrainCauser(no_causal, split, bench::CauserTrainConfig());
    auto r_att = eval::EvaluateExplanations(
        core::MakeCauserExplainer(no_causal, core::ExplainMode::kAttention),
        examples, 3);

    t.AddRow({"Causer", bb, Table::Fmt(100 * r_full.f1, 2),
              Table::Fmt(100 * r_full.ndcg, 2)});
    t.AddRow({"Causer (-att)", bb, Table::Fmt(100 * r_causal.f1, 2),
              Table::Fmt(100 * r_causal.ndcg, 2)});
    t.AddRow({"Causer (-causal)", bb, Table::Fmt(100 * r_att.f1, 2),
              Table::Fmt(100 * r_att.ndcg, 2)});
    std::printf("avg true causes per sample: %.2f (paper: 1.8)\n",
                r_full.avg_causes_per_example);
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "Shape check: the causal signal (What) matters more than local\n"
      "attention for explanation quality, and combining both is best\n"
      "(paper Fig. 7).\n");
  return 0;
}
