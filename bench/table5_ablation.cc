// Reproduces Table V: ablation study on Baby and Epinions (NDCG@5) with
// both backbones: Causer(-rec), Causer(-clus), Causer(-att),
// Causer(-causal) vs the full model. Paper finding: every component
// contributes; the full model is best.

#include <cstdio>

#include "bench_util.h"

int main() {
  using causer::Table;
  using namespace causer;
  bench::PrintHeader("Table V: ablation studies (NDCG@5, %)",
                     "paper Table V");

  struct Variant {
    const char* label;
    void (*apply)(core::CauserConfig&);
  };
  const Variant variants[] = {
      {"Causer (-rec)",
       [](core::CauserConfig& c) { c.use_reconstruction_loss = false; }},
      {"Causer (-clus)",
       [](core::CauserConfig& c) { c.use_clustering_loss = false; }},
      {"Causer (-att)",
       [](core::CauserConfig& c) { c.use_attention = false; }},
      {"Causer (-causal)",
       [](core::CauserConfig& c) { c.use_causal = false; }},
      {"Causer", [](core::CauserConfig&) {}},
  };

  Table t({"Variant", "LSTM Baby", "LSTM Epinions", "GRU Baby",
           "GRU Epinions"});
  std::vector<std::vector<std::string>> rows(std::size(variants));
  for (size_t v = 0; v < std::size(variants); ++v)
    rows[v].push_back(variants[v].label);

  for (auto backbone : {core::Backbone::kLstm, core::Backbone::kGru}) {
    for (auto which :
         {data::PaperDataset::kBaby, data::PaperDataset::kEpinions}) {
      auto dataset = data::MakeDataset(data::SpecFor(which));
      auto split = data::LeaveLastOut(dataset);
      for (size_t v = 0; v < std::size(variants); ++v) {
        auto cfg = bench::TunedCauserConfig(dataset, backbone);
        variants[v].apply(cfg);
        core::CauserModel model(cfg);
        auto run = bench::RunCauser(model, split, bench::CauserTrainConfig());
        rows[v].push_back(Table::Fmt(run.ndcg, 2));
        std::fprintf(stderr, "[table5] %s %s NDCG %.2f\n",
                     dataset.name.c_str(), run.name.c_str(), run.ndcg);
      }
    }
  }
  for (auto& row : rows) t.AddRow(row);
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "Shape check: the full model is strongest overall and each ablation\n"
      "loses performance, with the causal module and clustering losses\n"
      "carrying the largest share (paper Table V).\n");
  return 0;
}
