// Reproduces Fig. 6: influence of the assignment softmax temperature eta on
// NDCG@5 for Baby and Epinions, GRU and LSTM backbones. Paper finding:
// performance rises with eta to an optimum then falls; the optimum is
// dataset-dependent but backbone-robust.

#include <cstdio>

#include "bench_util.h"

int main() {
  using causer::Table;
  using namespace causer;
  bench::PrintHeader("Fig. 6: influence of the temperature eta (NDCG@5, %)",
                     "paper Fig. 6");

  const std::vector<float> etas = {0.01f, 0.05f, 0.1f, 0.25f, 0.5f,
                                   1.0f,  2.0f,  5.0f, 20.0f};
  for (auto which : {data::PaperDataset::kBaby, data::PaperDataset::kEpinions}) {
    auto dataset = data::MakeDataset(data::SpecFor(which));
    auto split = data::LeaveLastOut(dataset);
    std::printf("\n%s\n", dataset.name.c_str());
    Table t({"eta", "Causer (GRU)", "Causer (LSTM)"});
    for (float eta : etas) {
      std::vector<std::string> row = {Table::Fmt(eta, 2)};
      for (auto backbone : {core::Backbone::kGru, core::Backbone::kLstm}) {
        auto cfg = bench::TunedCauserConfig(dataset, backbone);
        cfg.eta = eta;
        core::CauserModel model(cfg);
        auto run = bench::RunCauser(model, split, bench::CauserTrainConfig());
        row.push_back(Table::Fmt(run.ndcg, 2));
        std::fprintf(stderr, "[fig6] %s eta=%.2f %s NDCG %.2f\n",
                     dataset.name.c_str(), eta, run.name.c_str(), run.ndcg);
      }
      t.AddRow(row);
    }
    std::printf("%s", t.ToString().c_str());
  }
  std::printf(
      "Shape check: rise-then-fall in eta; near-hard assignments (tiny eta)\n"
      "lose mixture information, near-uniform ones (large eta) blur the\n"
      "item-level causal relations (paper Fig. 6).\n");
  return 0;
}
