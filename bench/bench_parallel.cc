// Thread-pool scaling benchmark for the parallel training/eval engine.
//
// Sweeps the shared pool over 1/2/4/8 threads on the Table-IV-style
// synthetic workload (the bench_efficiency dataset) and measures:
//   (1) mini-batch training throughput (GRU4Rec, batch_size 8, per-worker
//       gradient buffers, one optimizer step per batch);
//   (2) evaluation throughput (instance-sharded Evaluate).
// It also asserts the engine's determinism contracts while it runs: the
// evaluation metrics must be bit-identical at every thread count, and
// batched training must be reproducible for a fixed thread count.
//
// Writes a BENCH_parallel.json report (path = argv[1], default
// ./BENCH_parallel.json). Speedups are relative to threads=1 on the same
// machine; on single-core hosts expect ~1x (the report records the core
// count so the numbers can be judged in context).

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"

namespace {

using namespace causer;

constexpr int kThreadCounts[] = {1, 2, 4, 8};
constexpr int kTrainEpochs = 2;  // timed epochs per thread count
constexpr int kEvalRepeats = 3;  // timed Evaluate passes per thread count

const data::Dataset& BenchData() {
  static data::Dataset d = [] {
    data::DatasetSpec spec = data::TinySpec();
    spec.num_users = 200;
    spec.num_items = 120;
    spec.num_clusters = 8;
    spec.min_len = 4;
    spec.max_len = 12;
    return data::MakeDataset(spec);
  }();
  return d;
}

const data::Split& BenchSplit() {
  static data::Split s = data::LeaveLastOut(BenchData());
  return s;
}

models::ModelConfig BatchedConfig() {
  models::ModelConfig cfg = bench::BaseConfig(BenchData());
  cfg.batch_size = 8;
  return cfg;
}

struct ThreadRun {
  int threads = 0;
  double train_seconds_per_epoch = 0.0;
  double train_examples_per_sec = 0.0;
  double eval_seconds = 0.0;
  double eval_instances_per_sec = 0.0;
  double final_loss = 0.0;
  bool eval_bit_identical = true;
};

int NumExamplesPerEpoch() {
  return static_cast<int>(
      data::EnumerateExamples(BenchSplit().train).size());
}

ThreadRun RunAtThreadCount(int threads) {
  SetDefaultThreads(threads);
  ThreadRun run;
  run.threads = threads;

  // --- training ---
  models::Gru4Rec model(BatchedConfig());
  model.TrainEpoch(BenchSplit().train);  // warm-up epoch (allocations, caches)
  Stopwatch sw;
  double loss = 0.0;
  for (int e = 0; e < kTrainEpochs; ++e)
    loss = model.TrainEpoch(BenchSplit().train);
  run.train_seconds_per_epoch = sw.ElapsedSeconds() / kTrainEpochs;
  run.final_loss = loss;
  run.train_examples_per_sec =
      NumExamplesPerEpoch() / run.train_seconds_per_epoch;

  // --- evaluation ---
  auto scorer = models::MakeScorer(model);
  eval::EvalResult result;
  Stopwatch esw;
  for (int r = 0; r < kEvalRepeats; ++r)
    result = eval::Evaluate(scorer, BenchSplit().test, 5, threads);
  run.eval_seconds = esw.ElapsedSeconds() / kEvalRepeats;
  run.eval_instances_per_sec = BenchSplit().test.size() / run.eval_seconds;

  // Contract: Evaluate's instance-order merge makes metrics bit-identical
  // at every thread count. (Models differ across thread counts — gradient
  // reduce order — so compare against a fixed-model reference instead.)
  eval::EvalResult sequential =
      eval::Evaluate(scorer, BenchSplit().test, 5, /*threads=*/1);
  run.eval_bit_identical = result.f1 == sequential.f1 &&
                           result.ndcg == sequential.ndcg &&
                           result.per_instance_ndcg ==
                               sequential.per_instance_ndcg;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_parallel.json");
  bench::PrintHeader(
      "Thread-pool scaling: mini-batch training + sharded evaluation",
      "Wang et al., ICDE 2023 (Table IV workload; engine addition)");

  const int cores =
      static_cast<int>(std::thread::hardware_concurrency());
  std::printf("hardware threads: %d, workload: %d train examples, "
              "%zu test instances\n\n",
              cores, NumExamplesPerEpoch(), BenchSplit().test.size());

  // Fixed-thread-count determinism spot check before timing anything.
  {
    SetDefaultThreads(4);
    models::Gru4Rec a(BatchedConfig());
    models::Gru4Rec b(BatchedConfig());
    double la = a.TrainEpoch(BenchSplit().train);
    double lb = b.TrainEpoch(BenchSplit().train);
    if (la != lb) {
      std::fprintf(stderr,
                   "FATAL: batched training not reproducible at a fixed "
                   "thread count (%.17g vs %.17g)\n", la, lb);
      return 1;
    }
    SetDefaultThreads(1);
  }

  std::vector<ThreadRun> runs;
  for (int threads : kThreadCounts) runs.push_back(RunAtThreadCount(threads));
  SetDefaultThreads(1);

  const ThreadRun& base = runs.front();
  std::printf("%8s %14s %14s %10s %14s %10s %6s\n", "threads", "s/epoch",
              "train ex/s", "speedup", "eval inst/s", "speedup", "exact");
  std::vector<std::string> rows;
  bool all_identical = true;
  for (const ThreadRun& run : runs) {
    double train_speedup =
        base.train_seconds_per_epoch / run.train_seconds_per_epoch;
    double eval_speedup = run.eval_instances_per_sec /
                          base.eval_instances_per_sec;
    all_identical = all_identical && run.eval_bit_identical;
    std::printf("%8d %14.3f %14.1f %9.2fx %14.1f %9.2fx %6s\n", run.threads,
                run.train_seconds_per_epoch, run.train_examples_per_sec,
                train_speedup, run.eval_instances_per_sec, eval_speedup,
                run.eval_bit_identical ? "yes" : "NO");
    bench::JsonObject row;
    row.Set("threads", run.threads)
        .Set("train_seconds_per_epoch", run.train_seconds_per_epoch)
        .Set("train_examples_per_sec", run.train_examples_per_sec)
        .Set("train_speedup_vs_1", train_speedup)
        .Set("eval_seconds", run.eval_seconds)
        .Set("eval_instances_per_sec", run.eval_instances_per_sec)
        .Set("eval_speedup_vs_1", eval_speedup)
        .Set("final_epoch_loss", run.final_loss)
        .Set("eval_metrics_bit_identical", run.eval_bit_identical);
    rows.push_back(row.Str());
  }
  if (!all_identical) {
    std::fprintf(stderr,
                 "FATAL: parallel evaluation metrics diverged from the "
                 "sequential evaluator\n");
    return 1;
  }
  std::printf("\nevaluation metrics bit-identical across all thread "
              "counts: yes\n");

  bench::JsonObject report;
  report.Set("bench", std::string("bench_parallel"))
      .Set("workload",
           std::string("TinySpec scaled to 200 users / 120 items, GRU4Rec, "
                       "batch_size 8, z=5"))
      .Set("hardware_threads", cores)
      .Set("train_examples_per_epoch", NumExamplesPerEpoch())
      .Set("test_instances", static_cast<int>(BenchSplit().test.size()))
      .SetRaw("runs", bench::JsonArray(rows));
  if (!bench::WriteTextFile(out_path, report.Str())) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("report -> %s\n", out_path.c_str());
  return 0;
}
