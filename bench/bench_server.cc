// Network serving benchmark: the TCP front-end (src/serve/server.h) over
// the micro-batched engine, exercised in-process over loopback — wire
// encode/decode, per-connection readers, the two-lane scheduler and worker
// handoff all included, so the delta vs. BENCH_serving.json's in-process
// Handle numbers is the protocol + scheduling overhead.
//
// Closed-loop: each client thread owns one connection and one in-flight
// request (latency here is honest per-call round-trip time; the open-loop
// tail hunter is tools/causer_loadgen.cc against a real process).
//
// Two phases: steady state, then the same traffic with a reloader thread
// continuously hot-swapping between two weight sets — the zero-downtime
// claim, measured: Reload publishes with one atomic store and never
// touches the score path, so the reload-phase tail must stay close to
// steady state.
//
// Gates (exit code): every steady-state response kOk and bit-identical to
// the engine's synchronous ScoreBatch for the same session; every
// reload-phase response bit-identical to the weights of the version
// stamped on it; QPS > 0; and (full runs only — smoke timings are noise)
// reload-phase p99 within 2x of steady-state p99. Writes a
// BENCH_server.json report (path = argv[last], default ./BENCH_server.json).
//
// `--smoke` shrinks the request count for CI.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "eval/metrics.h"
#include "serve/client.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace {

using namespace causer;

constexpr int kNumItems = 500;
constexpr int kClients = 4;

models::ModelConfig BenchModelConfig(uint64_t seed) {
  models::ModelConfig config;
  config.num_users = 64;
  config.num_items = kNumItems;
  config.embedding_dim = 32;
  config.hidden_dim = 32;
  config.seed = seed;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_server.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  bench::PrintHeader(
      "Network serving: TCP front-end over the micro-batched engine",
      "Wang et al., ICDE 2023 (serving engine; no paper figure)");
  SetDefaultThreads(1);
  const int per_client = smoke ? 200 : 2000;

  auto model_a = std::make_shared<models::Gru4Rec>(BenchModelConfig(7));
  auto model_b = std::make_shared<models::Gru4Rec>(BenchModelConfig(13));
  serve::ServingConfig sc;
  sc.top_k = 10;
  sc.batch_max = kClients;
  sc.batch_wait_us = 100;
  serve::ServingEngine engine(model_a, sc);
  serve::ServerConfig server_config;
  server_config.workers = kClients;
  serve::Server server(engine, server_config);
  if (!server.Start()) {
    std::fprintf(stderr, "FAILED to bind the loopback server\n");
    return 1;
  }

  // Reference answers from the synchronous engine path, one per user: the
  // wire responses must match bit for bit (same sessions, no appends).
  std::vector<serve::Response> expected(kClients);
  for (int c = 0; c < kClients; ++c) {
    serve::Request request;
    request.user = c;
    expected[c] = engine.ScoreBatch({request})[0];
  }

  std::vector<std::vector<double>> latencies(kClients);
  std::vector<long> wrong(kClients, 0);
  Stopwatch wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      serve::Client client;
      if (!client.Connect("127.0.0.1", server.port())) {
        wrong[c] = per_client;
        return;
      }
      latencies[c].reserve(per_client);
      for (int i = 0; i < per_client; ++i) {
        serve::wire::RequestFrame request;
        request.request_id = static_cast<uint32_t>(i);
        request.user = c;
        serve::wire::ResponseFrame response;
        Stopwatch watch;
        if (!client.Call(request, &response)) {
          wrong[c] += per_client - i;
          return;
        }
        latencies[c].push_back(watch.ElapsedSeconds());
        const bool match =
            response.status == serve::wire::Status::kOk &&
            response.items.size() == expected[c].items.size() &&
            std::equal(response.items.begin(), response.items.end(),
                       expected[c].items.begin()) &&
            std::equal(response.scores.begin(), response.scores.end(),
                       expected[c].scores.begin());
        if (!match) ++wrong[c];
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_seconds = wall.ElapsedSeconds();

  std::vector<double> all;
  long bad = 0;
  for (int c = 0; c < kClients; ++c) {
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
    bad += wrong[c];
  }
  std::sort(all.begin(), all.end());
  const auto pct = [](const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    return sorted[static_cast<size_t>(q * (sorted.size() - 1))] * 1e3;
  };
  const long total = static_cast<long>(kClients) * per_client;
  const double qps = wall_seconds > 0 ? total / wall_seconds : 0.0;

  // ---- Phase 2: the same traffic while hot reloads fire continuously.
  // Version parity identifies the weights (v1 = a, then b, a, b, ...), so
  // every response can be checked against the exact model that stamped it.
  std::vector<serve::Response> expected_b(kClients);
  if (engine.Reload(model_b) != 2) {
    std::fprintf(stderr, "FAILED: first reload rejected\n");
    return 1;
  }
  for (int c = 0; c < kClients; ++c) {
    serve::Request request;
    request.user = c;
    expected_b[c] = engine.ScoreBatch({request})[0];
  }

  std::atomic<bool> reloading{true};
  std::atomic<long> reloads{0};
  std::thread reloader([&] {
    uint64_t version = 2;
    while (reloading.load()) {
      ++version;
      engine.Reload(version % 2 == 1 ? model_a : model_b);
      reloads.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<std::vector<double>> reload_latencies(kClients);
  std::vector<long> reload_wrong(kClients, 0);
  Stopwatch reload_wall;
  std::vector<std::thread> reload_threads;
  for (int c = 0; c < kClients; ++c) {
    reload_threads.emplace_back([&, c] {
      serve::Client client;
      if (!client.Connect("127.0.0.1", server.port())) {
        reload_wrong[c] = per_client;
        return;
      }
      reload_latencies[c].reserve(per_client);
      for (int i = 0; i < per_client; ++i) {
        serve::wire::RequestFrame request;
        request.request_id = static_cast<uint32_t>(i);
        request.user = c;
        serve::wire::ResponseFrame response;
        Stopwatch watch;
        if (!client.Call(request, &response)) {
          reload_wrong[c] += per_client - i;
          return;
        }
        reload_latencies[c].push_back(watch.ElapsedSeconds());
        const serve::Response& want =
            response.model_version % 2 == 1 ? expected[c] : expected_b[c];
        const bool match =
            response.status == serve::wire::Status::kOk &&
            response.model_version >= 1 &&
            response.items.size() == want.items.size() &&
            std::equal(response.items.begin(), response.items.end(),
                       want.items.begin()) &&
            std::equal(response.scores.begin(), response.scores.end(),
                       want.scores.begin());
        if (!match) ++reload_wrong[c];
      }
    });
  }
  for (auto& t : reload_threads) t.join();
  const double reload_wall_seconds = reload_wall.ElapsedSeconds();
  reloading.store(false);
  reloader.join();
  server.Shutdown();

  std::vector<double> reload_all;
  long reload_bad = 0;
  for (int c = 0; c < kClients; ++c) {
    reload_all.insert(reload_all.end(), reload_latencies[c].begin(),
                      reload_latencies[c].end());
    reload_bad += reload_wrong[c];
  }
  std::sort(reload_all.begin(), reload_all.end());
  const double reload_qps =
      reload_wall_seconds > 0 ? total / reload_wall_seconds : 0.0;
  const double p99_ratio =
      pct(all, 0.99) > 0 ? pct(reload_all, 0.99) / pct(all, 0.99) : 0.0;

  // Smoke runs keep the bit-exactness gates but skip the timing ratio:
  // 200-request percentiles are noise.
  const bool tail_ok = smoke || p99_ratio <= 2.0;
  const bool ok = bad == 0 && reload_bad == 0 && qps > 0 &&
                  reloads.load() >= 5 && tail_ok;

  std::printf("%ld requests over %d connections: p50 %.3f ms  p99 %.3f ms  "
              "%.0f req/s  mismatches %ld\n",
              total, kClients, pct(all, 0.50), pct(all, 0.99), qps, bad);
  std::printf("%ld requests under %ld hot reloads: p50 %.3f ms  p99 %.3f ms "
              " %.0f req/s  mismatches %ld  (p99 ratio %.2fx)\n",
              total, reloads.load(), pct(reload_all, 0.50),
              pct(reload_all, 0.99), reload_qps, reload_bad, p99_ratio);
  std::printf("gate (bit-identical both phases, QPS > 0, >= 5 reloads%s): "
              "%s\n",
              smoke ? "" : ", reload p99 <= 2x steady",
              ok ? "PASS" : "FAIL");

  bench::JsonObject report;
  report.Set("bench", std::string("server"))
      .Set("smoke", smoke)
      .Set("requests", static_cast<int>(total))
      .Set("connections", kClients)
      .Set("workers", server_config.workers)
      .Set("p50_ms", pct(all, 0.50))
      .Set("p99_ms", pct(all, 0.99))
      .Set("qps", qps)
      .Set("mismatches", static_cast<int>(bad))
      .Set("reloads", static_cast<int>(reloads.load()))
      .Set("reload_p50_ms", pct(reload_all, 0.50))
      .Set("reload_p99_ms", pct(reload_all, 0.99))
      .Set("reload_qps", reload_qps)
      .Set("reload_mismatches", static_cast<int>(reload_bad))
      .Set("reload_p99_ratio", p99_ratio)
      .Set("pass", ok);
  if (!bench::WriteTextFile(out_path, report.Str())) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("report -> %s\n", out_path.c_str());
  return ok ? 0 : 1;
}
