// Network serving benchmark: the TCP front-end (src/serve/server.h) over
// the micro-batched engine, exercised in-process over loopback — wire
// encode/decode, per-connection readers, the two-lane scheduler and worker
// handoff all included, so the delta vs. BENCH_serving.json's in-process
// Handle numbers is the protocol + scheduling overhead.
//
// Closed-loop: each client thread owns one connection and one in-flight
// request (latency here is honest per-call round-trip time; the open-loop
// tail hunter is tools/causer_loadgen.cc against a real process).
//
// Gates (exit code): every response kOk and bit-identical to the engine's
// synchronous ScoreBatch for the same session, and QPS > 0. Writes a
// BENCH_server.json report (path = argv[last], default ./BENCH_server.json).
//
// `--smoke` shrinks the request count for CI.

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "eval/metrics.h"
#include "serve/client.h"
#include "serve/engine.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace {

using namespace causer;

constexpr int kNumItems = 500;
constexpr int kClients = 4;

models::ModelConfig BenchModelConfig() {
  models::ModelConfig config;
  config.num_users = 64;
  config.num_items = kNumItems;
  config.embedding_dim = 32;
  config.hidden_dim = 32;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_server.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  bench::PrintHeader(
      "Network serving: TCP front-end over the micro-batched engine",
      "Wang et al., ICDE 2023 (serving engine; no paper figure)");
  SetDefaultThreads(1);
  const int per_client = smoke ? 200 : 2000;

  models::Gru4Rec model(BenchModelConfig());
  serve::ServingConfig sc;
  sc.top_k = 10;
  sc.batch_max = kClients;
  sc.batch_wait_us = 100;
  serve::ServingEngine engine(model, sc);
  serve::ServerConfig server_config;
  server_config.workers = kClients;
  serve::Server server(engine, server_config);
  if (!server.Start()) {
    std::fprintf(stderr, "FAILED to bind the loopback server\n");
    return 1;
  }

  // Reference answers from the synchronous engine path, one per user: the
  // wire responses must match bit for bit (same sessions, no appends).
  std::vector<serve::Response> expected(kClients);
  for (int c = 0; c < kClients; ++c) {
    serve::Request request;
    request.user = c;
    expected[c] = engine.ScoreBatch({request})[0];
  }

  std::vector<std::vector<double>> latencies(kClients);
  std::vector<long> wrong(kClients, 0);
  Stopwatch wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      serve::Client client;
      if (!client.Connect("127.0.0.1", server.port())) {
        wrong[c] = per_client;
        return;
      }
      latencies[c].reserve(per_client);
      for (int i = 0; i < per_client; ++i) {
        serve::wire::RequestFrame request;
        request.request_id = static_cast<uint32_t>(i);
        request.user = c;
        serve::wire::ResponseFrame response;
        Stopwatch watch;
        if (!client.Call(request, &response)) {
          wrong[c] += per_client - i;
          return;
        }
        latencies[c].push_back(watch.ElapsedSeconds());
        const bool match =
            response.status == serve::wire::Status::kOk &&
            response.items.size() == expected[c].items.size() &&
            std::equal(response.items.begin(), response.items.end(),
                       expected[c].items.begin()) &&
            std::equal(response.scores.begin(), response.scores.end(),
                       expected[c].scores.begin());
        if (!match) ++wrong[c];
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_seconds = wall.ElapsedSeconds();
  server.Shutdown();

  std::vector<double> all;
  long bad = 0;
  for (int c = 0; c < kClients; ++c) {
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
    bad += wrong[c];
  }
  std::sort(all.begin(), all.end());
  const auto pct = [&](double q) {
    if (all.empty()) return 0.0;
    return all[static_cast<size_t>(q * (all.size() - 1))] * 1e3;
  };
  const long total = static_cast<long>(kClients) * per_client;
  const double qps = wall_seconds > 0 ? total / wall_seconds : 0.0;
  const bool ok = bad == 0 && qps > 0;

  std::printf("%ld requests over %d connections: p50 %.3f ms  p99 %.3f ms  "
              "%.0f req/s  mismatches %ld\n",
              total, kClients, pct(0.50), pct(0.99), qps, bad);
  std::printf("gate (all responses OK and bit-identical, QPS > 0): %s\n",
              ok ? "PASS" : "FAIL");

  bench::JsonObject report;
  report.Set("bench", std::string("server"))
      .Set("smoke", smoke)
      .Set("requests", static_cast<int>(total))
      .Set("connections", kClients)
      .Set("workers", server_config.workers)
      .Set("p50_ms", pct(0.50))
      .Set("p99_ms", pct(0.99))
      .Set("qps", qps)
      .Set("mismatches", static_cast<int>(bad))
      .Set("pass", ok);
  if (!bench::WriteTextFile(out_path, report.Str())) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("report -> %s\n", out_path.c_str());
  return ok ? 0 : 1;
}
