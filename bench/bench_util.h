#ifndef CAUSER_BENCH_BENCH_UTIL_H_
#define CAUSER_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/table.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/split.h"
#include "data/specs.h"
#include "eval/evaluator.h"
#include "eval/significance.h"
#include "models/bpr.h"
#include "models/fpmc.h"
#include "models/gru4rec.h"
#include "models/mmsarec.h"
#include "models/narm.h"
#include "models/ncf.h"
#include "models/sasrec.h"
#include "models/stamp.h"
#include "models/vtrnn.h"

namespace causer::bench {

/// Evaluation result of one trained model on a test split.
struct ModelRun {
  std::string name;
  double f1 = 0.0;    // percent
  double ndcg = 0.0;  // percent
  eval::EvalResult raw;
  double train_seconds = 0.0;
};

inline models::TrainConfig BaselineTrainConfig() {
  return {.max_epochs = 8, .patience = 2};
}

inline models::TrainConfig CauserTrainConfig() {
  return {.max_epochs = 12, .patience = 3};
}

/// Times `train` (any callable that trains `model`) and evaluates F1@5 /
/// NDCG@5 on the test split — the shared tail of RunBaseline / RunCauser.
template <typename TrainFn>
ModelRun TimedRun(models::SequentialRecommender& model,
                  const data::Split& split, TrainFn&& train) {
  Stopwatch sw;
  train();
  ModelRun run;
  run.train_seconds = sw.ElapsedSeconds();
  run.name = model.name();
  run.raw = eval::Evaluate(models::MakeScorer(model), split.test, 5);
  run.f1 = run.raw.f1 * 100.0;
  run.ndcg = run.raw.ndcg * 100.0;
  return run;
}

/// Trains `model` on the split and evaluates F1@5 / NDCG@5 on the test set.
inline ModelRun RunBaseline(models::SequentialRecommender& model,
                            const data::Split& split,
                            const models::TrainConfig& config) {
  return TimedRun(model, split, [&] { models::Fit(model, split, config); });
}

/// Trains a Causer model (with the warm-up-aware trainer) and evaluates it.
inline ModelRun RunCauser(core::CauserModel& model, const data::Split& split,
                          const models::TrainConfig& config) {
  return TimedRun(model, split,
                  [&] { core::TrainCauser(model, split, config); });
}

/// The model configuration shared by all baselines for a dataset.
inline models::ModelConfig BaseConfig(const data::Dataset& dataset,
                                      uint64_t seed = 7) {
  models::ModelConfig config;
  config.num_users = dataset.num_users;
  config.num_items = dataset.num_items;
  config.item_features = &dataset.item_features;
  config.seed = seed;
  return config;
}

/// Causer configuration for a dataset with the grid-searched
/// hyper-parameters (the paper tunes per dataset, Table III): the denser
/// Amazon-like catalogs (Patio, Baby) prefer more negative samples.
inline core::CauserConfig TunedCauserConfig(const data::Dataset& dataset,
                                            core::Backbone backbone,
                                            uint64_t seed = 7) {
  core::CauserConfig config =
      core::DefaultCauserConfig(dataset, backbone, seed);
  if (dataset.name == "Patio" || dataset.name == "Baby") {
    config.base.num_negatives = 8;
  }
  if (dataset.name == "Foursquare") {
    // Long check-in sequences prefer a milder filter (Fig. 5's tradeoff).
    config.epsilon = 0.15f;
  }
  return config;
}

/// Builds the paper's eight baselines (Table IV order).
inline std::vector<std::unique_ptr<models::SequentialRecommender>>
MakeBaselines(const data::Dataset& dataset, uint64_t seed = 7) {
  auto cfg = BaseConfig(dataset, seed);
  std::vector<std::unique_ptr<models::SequentialRecommender>> out;
  out.push_back(std::make_unique<models::Bpr>(cfg));
  out.push_back(std::make_unique<models::Ncf>(cfg));
  out.push_back(std::make_unique<models::Gru4Rec>(cfg));
  out.push_back(std::make_unique<models::Stamp>(cfg));
  out.push_back(std::make_unique<models::SasRec>(cfg));
  out.push_back(std::make_unique<models::Narm>(cfg));
  out.push_back(std::make_unique<models::Vtrnn>(cfg));
  out.push_back(std::make_unique<models::MmsaRec>(cfg));
  return out;
}

inline void PrintHeader(const std::string& title, const std::string& paper) {
  std::printf("\n==================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Paper reference: %s\n", paper.c_str());
  std::printf("==================================================\n");
}

/// Tiny insertion-ordered JSON object builder for the BENCH_*.json reports.
/// Only what the benches need: flat scalars plus raw nested values.
class JsonObject {
 public:
  JsonObject& Set(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return SetRaw(key, buf);
  }
  JsonObject& Set(const std::string& key, int v) {
    return SetRaw(key, std::to_string(v));
  }
  JsonObject& Set(const std::string& key, bool v) {
    return SetRaw(key, v ? "true" : "false");
  }
  JsonObject& Set(const std::string& key, const std::string& v) {
    return SetRaw(key, Quote(v));
  }
  /// Inserts `raw` verbatim — pass an already-serialized object or array.
  JsonObject& SetRaw(const std::string& key, const std::string& raw) {
    fields_.push_back({key, raw});
    return *this;
  }
  std::string Str() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += Quote(fields_[i].first) + ": " + fields_[i].second;
    }
    return out + "}";
  }

  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out + "\"";
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

inline std::string JsonArray(const std::vector<std::string>& elements) {
  std::string out = "[";
  for (size_t i = 0; i < elements.size(); ++i) {
    if (i > 0) out += ", ";
    out += elements[i];
  }
  return out + "]";
}

inline bool WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

}  // namespace causer::bench

#endif  // CAUSER_BENCH_BENCH_UTIL_H_
