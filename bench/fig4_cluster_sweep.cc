// Reproduces Fig. 4: influence of the number of latent clusters K on
// NDCG@5, for Baby and Epinions, with both GRU and LSTM backbones.
// Paper finding: an intermediate K is best; homogeneous Baby prefers a
// small K while diverse Epinions prefers a larger one; very small and very
// large K both hurt.

#include <cstdio>

#include "bench_util.h"

int main() {
  using causer::Table;
  using namespace causer;
  bench::PrintHeader("Fig. 4: influence of the cluster count K (NDCG@5, %)",
                     "paper Fig. 4");

  const std::vector<int> ks = {2, 4, 6, 8, 12, 16, 24, 32};
  for (auto which : {data::PaperDataset::kBaby, data::PaperDataset::kEpinions}) {
    auto dataset = data::MakeDataset(data::SpecFor(which));
    auto split = data::LeaveLastOut(dataset);
    std::printf("\n%s (generator truth: %d clusters)\n", dataset.name.c_str(),
                dataset.true_cluster_graph.n());
    Table t({"K", "Causer (GRU)", "Causer (LSTM)"});
    for (int k : ks) {
      std::vector<std::string> row = {std::to_string(k)};
      for (auto backbone : {core::Backbone::kGru, core::Backbone::kLstm}) {
        auto cfg = bench::TunedCauserConfig(dataset, backbone);
        cfg.num_clusters = k;
        core::CauserModel model(cfg);
        auto run = bench::RunCauser(model, split, bench::CauserTrainConfig());
        row.push_back(Table::Fmt(run.ndcg, 2));
        std::fprintf(stderr, "[fig4] %s K=%d %s NDCG %.2f (%.0fs)\n",
                     dataset.name.c_str(), k, run.name.c_str(), run.ndcg,
                     run.train_seconds);
      }
      t.AddRow(row);
    }
    std::printf("%s", t.ToString().c_str());
  }
  std::printf(
      "Shape check: performance peaks near the generator's true cluster\n"
      "count and degrades for K too small (clusters not expressive) or too\n"
      "large (over-parameterized graph), mirroring the paper's Fig. 4.\n");
  return 0;
}
