// Reproduces Fig. 3: distribution of per-user sequence lengths for each
// dataset, printed as histogram tables plus an ASCII bar chart.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "data/stats.h"

int main() {
  using causer::Table;
  causer::bench::PrintHeader("Fig. 3: sequence length distributions",
                             "paper Fig. 3");

  for (const auto& spec : causer::data::AllPaperSpecs()) {
    auto dataset = causer::data::MakeDataset(spec);
    // Bucket edges adapted to the dataset's scale (Foursquare-like
    // sequences are much longer).
    std::vector<int> edges;
    if (dataset.AvgSequenceLength() > 12.0) {
      edges = {0, 10, 15, 20, 25, 30, 40, 50};
    } else {
      edges = {0, 3, 4, 5, 6, 8, 10, 14};
    }
    auto counts = causer::data::SequenceLengthHistogram(dataset, edges);
    int max_count = *std::max_element(counts.begin(), counts.end());

    std::printf("\n%s (avg %.2f interactions/user)\n", dataset.name.c_str(),
                dataset.AvgSequenceLength());
    Table t({"Length bucket", "#Users", "Share", "Bar"});
    for (size_t b = 0; b < counts.size(); ++b) {
      std::string bucket =
          b + 1 < edges.size()
              ? "[" + std::to_string(edges[b]) + ", " +
                    std::to_string(edges[b + 1]) + ")"
              : ">= " + std::to_string(edges.back());
      int bar_len =
          max_count > 0 ? (counts[b] * 40 + max_count - 1) / max_count : 0;
      t.AddRow({bucket, std::to_string(counts[b]),
                Table::Fmt(100.0 * counts[b] / dataset.num_users, 1) + "%",
                std::string(bar_len, '#')});
    }
    std::printf("%s", t.ToString().c_str());
  }
  std::printf(
      "\nShape check: short-sequence mass dominates the Amazon-like and\n"
      "Epinions datasets (heavy head), while Foursquare's distribution is\n"
      "shifted right with a long tail, as in the paper's Fig. 3.\n");
  return 0;
}
