// Reproduces Table IV: overall comparison of Causer (GRU / LSTM) against
// eight baselines on all five datasets, F1@5 and NDCG@5. Every model is
// trained with 3 random seeds and the mean is reported (single-seed
// results on the scaled-down datasets vary by ~10%); the paired t-test of
// Causer's best variant against the best baseline pools the per-instance
// metrics across seeds (the paper marks p < 0.05 with *).

#include <cstdio>

#include "bench_util.h"

namespace {

constexpr uint64_t kSeeds[] = {7, 17, 27};

}  // namespace

int main() {
  using causer::Table;
  using namespace causer;
  bench::PrintHeader(
      "Table IV: overall performance comparison (F1@5 / NDCG@5, in %, "
      "mean of 3 seeds)",
      "paper Table IV. Expected shape: neural > shallow, attention/side-info "
      "baselines strongest among baselines, Causer best overall "
      "(paper: ~+6.1% F1, ~+11.3% NDCG over best baseline on average).");

  std::vector<std::string> model_names;
  std::vector<std::vector<std::string>> cells;
  std::vector<std::string> dataset_names;
  double causer_gain_f1 = 0.0, causer_gain_ndcg = 0.0;
  int gain_count = 0;

  bool first_dataset = true;
  for (const auto& spec : data::AllPaperSpecs()) {
    auto dataset = data::MakeDataset(spec);
    auto split = data::LeaveLastOut(dataset);
    dataset_names.push_back(dataset.name);
    std::fprintf(stderr, "[table4] dataset %s\n", dataset.name.c_str());

    struct Averaged {
      std::string name;
      double f1 = 0.0, ndcg = 0.0;
      std::vector<double> pooled_ndcg;  // per-instance, across seeds
    };
    std::vector<Averaged> runs;

    const int num_models = 10;
    for (int m = 0; m < num_models; ++m) {
      Averaged avg;
      for (uint64_t seed : kSeeds) {
        bench::ModelRun run;
        if (m < 8) {
          auto baselines = bench::MakeBaselines(dataset, seed);
          run = bench::RunBaseline(*baselines[m], split,
                                   bench::BaselineTrainConfig());
        } else {
          auto backbone =
              m == 8 ? core::Backbone::kLstm : core::Backbone::kGru;
          auto cfg = bench::TunedCauserConfig(dataset, backbone, seed);
          core::CauserModel model(cfg);
          run = bench::RunCauser(model, split, bench::CauserTrainConfig());
        }
        avg.name = run.name;
        avg.f1 += run.f1 / std::size(kSeeds);
        avg.ndcg += run.ndcg / std::size(kSeeds);
        avg.pooled_ndcg.insert(avg.pooled_ndcg.end(),
                               run.raw.per_instance_ndcg.begin(),
                               run.raw.per_instance_ndcg.end());
      }
      std::fprintf(stderr, "[table4]   %-14s F1 %.2f NDCG %.2f\n",
                   avg.name.c_str(), avg.f1, avg.ndcg);
      runs.push_back(std::move(avg));
    }

    size_t best_base = 0, best_causer = 8;
    for (size_t i = 0; i < 8; ++i) {
      if (runs[i].ndcg > runs[best_base].ndcg) best_base = i;
    }
    for (size_t i = 8; i < runs.size(); ++i) {
      if (runs[i].ndcg > runs[best_causer].ndcg) best_causer = i;
    }
    auto ttest = eval::PairedTTest(runs[best_causer].pooled_ndcg,
                                   runs[best_base].pooled_ndcg);
    if (runs[best_base].f1 > 0) {
      causer_gain_f1 += runs[best_causer].f1 / runs[best_base].f1 - 1.0;
      causer_gain_ndcg += runs[best_causer].ndcg / runs[best_base].ndcg - 1.0;
      ++gain_count;
    }

    if (first_dataset) {
      for (const auto& r : runs) model_names.push_back(r.name);
      cells.assign(model_names.size(), {});
      first_dataset = false;
    }
    for (size_t i = 0; i < runs.size(); ++i) {
      std::string mark =
          i == best_causer && ttest.p_value < 0.05 ? "*" : "";
      cells[i].push_back(Table::Fmt(runs[i].f1, 2) + " / " +
                         Table::Fmt(runs[i].ndcg, 2) + mark);
    }
  }

  std::vector<std::string> header = {"Model (F1@5 / NDCG@5 %)"};
  header.insert(header.end(), dataset_names.begin(), dataset_names.end());
  Table t(header);
  for (size_t i = 0; i < model_names.size(); ++i) {
    if (i + 2 == model_names.size()) t.AddSeparator();
    std::vector<std::string> row = {model_names[i]};
    row.insert(row.end(), cells[i].begin(), cells[i].end());
    t.AddRow(row);
  }
  std::printf("%s", t.ToString().c_str());
  if (gain_count > 0) {
    std::printf(
        "Average improvement of best Causer over best baseline: "
        "F1 %+.1f%%, NDCG %+.1f%% (paper: +6.1%% / +11.3%%).\n",
        100.0 * causer_gain_f1 / gain_count,
        100.0 * causer_gain_ndcg / gain_count);
  }
  std::printf(
      "* = paired t-test (per-instance NDCG pooled over seeds) vs best "
      "baseline, p < 0.05.\n");
  return 0;
}
