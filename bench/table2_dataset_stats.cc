// Reproduces Table II: statistics of the five (synthetic stand-in)
// datasets: #users, #items, #interactions, average sequence length and
// sparsity. Paper values are printed alongside for shape comparison (our
// datasets are scaled down ~4-20x for single-core CPU training; relative
// characteristics are preserved).

#include <cstdio>

#include "bench_util.h"
#include "data/stats.h"

namespace {

struct PaperRow {
  const char* name;
  int users, items, interactions;
  double seqlen;
  double sparsity;  // percent
};

constexpr PaperRow kPaperRows[] = {
    {"Epinions", 1530, 683, 4600, 3.01, 99.56},
    {"Foursquare", 2292, 5494, 120736, 52.68, 99.04},
    {"Patio", 7153, 2952, 29625, 4.14, 99.86},
    {"Baby", 16898, 6178, 77046, 4.56, 99.93},
    {"Video", 19939, 9275, 142658, 7.15, 99.92},
};

}  // namespace

int main() {
  using causer::Table;
  causer::bench::PrintHeader(
      "Table II: dataset statistics",
      "paper Table II (real datasets; ours are scaled synthetic stand-ins)");

  Table t({"Dataset", "#User", "#Item", "#Inter", "SeqLen", "Sparsity",
           "(paper #U/#I/#Int/SeqLen/Spars)"});
  auto specs = causer::data::AllPaperSpecs();
  for (size_t i = 0; i < specs.size(); ++i) {
    auto dataset = causer::data::MakeDataset(specs[i]);
    auto s = causer::data::ComputeStats(dataset);
    char paper[96];
    std::snprintf(paper, sizeof(paper), "%d / %d / %d / %.2f / %.2f%%",
                  kPaperRows[i].users, kPaperRows[i].items,
                  kPaperRows[i].interactions, kPaperRows[i].seqlen,
                  kPaperRows[i].sparsity);
    t.AddRow({s.name, std::to_string(s.num_users), std::to_string(s.num_items),
              std::to_string(s.num_interactions), Table::Fmt(s.avg_seq_len, 2),
              Table::Fmt(100.0 * s.sparsity, 2) + "%", paper});
  }
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "Shape checks: Foursquare has by far the longest sequences; all\n"
      "datasets are >90%% sparse; Epinions is the smallest catalog.\n");
  return 0;
}
