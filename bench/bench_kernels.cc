// Kernel & memory engine benchmark: packed matmul microkernels, heap TopK
// selection, and the autograd arena allocator.
//
// Three sections, all single-process:
//   (1) GEMM: naive reference kernel vs. the packed/blocked production
//       kernel (single thread, so the number is the microkernel itself, not
//       parallelism), with a bitwise-equality check per shape;
//   (2) TopK: bounded-heap selection vs. a full argsort of the catalog;
//   (3) end-to-end: GRU4Rec TrainEpoch steps/sec with the arena enabled vs.
//       disabled, asserting bit-identical epoch losses either way.
//
// Writes a BENCH_kernels.json report (path = argv[last], default
// ./BENCH_kernels.json).
//
// `--smoke` shrinks the timed work for CI and turns the "packed must not be
// slower than naive on the large transpose-B shape" check into the exit
// code, so a regression that loses the packing win fails the pipeline.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "eval/metrics.h"
#include "tensor/arena.h"
#include "tensor/kernels.h"

namespace {

using namespace causer;

// ---------------------------------------------------------------------------
// Section 1: GEMM microkernels

struct GemmShape {
  const char* label;
  int n, m, p;
  bool ta, tb;
};

// The transpose-B shapes are the hot ones: every backward pass computes
// dA = dC · B^T, and full-catalog scoring is a [1, h] · [catalog, h]^T
// product. The large tb entry is the smoke-test gate.
const GemmShape kGemmShapes[] = {
    {"forward_64x64x64", 64, 64, 64, false, false},
    {"forward_33x128x128", 33, 128, 128, false, false},
    {"grad_b_transA_64x512x64", 64, 512, 64, true, false},
    {"grad_a_transB_64x64x512", 64, 64, 512, false, true},
    {"score_row_transB_1x64x512", 1, 64, 512, false, true},
};
const char* kSmokeGateLabel = "grad_a_transB_64x64x512";

struct GemmResult {
  std::string label;
  double naive_gflops = 0.0;
  double packed_gflops = 0.0;
  double speedup = 0.0;
  bool bit_identical = true;
};

std::vector<float> RandomBuffer(size_t size, Rng& rng) {
  std::vector<float> out(size);
  for (auto& v : out) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return out;
}

// Best-of-`repeats` GFLOP/s for one kernel entry point on one shape.
template <typename KernelFn>
double MeasureGflops(KernelFn&& kernel, const std::vector<float>& a,
                     const std::vector<float>& b, std::vector<float>& c,
                     const GemmShape& s, int iters, int repeats) {
  double best_seconds = 1e30;
  for (int r = 0; r < repeats; ++r) {
    std::fill(c.begin(), c.end(), 0.0f);
    Stopwatch sw;
    for (int i = 0; i < iters; ++i)
      kernel(a.data(), b.data(), c.data(), s.n, s.m, s.p, s.ta, s.tb);
    best_seconds = std::min(best_seconds, sw.ElapsedSeconds());
  }
  const double flops =
      2.0 * s.n * s.m * s.p * static_cast<double>(iters);
  return flops / best_seconds / 1e9;
}

GemmResult RunGemmShape(const GemmShape& s, bool smoke) {
  Rng rng(42);
  auto a = RandomBuffer(static_cast<size_t>(s.n) * s.m, rng);
  auto b = RandomBuffer(static_cast<size_t>(s.m) * s.p, rng);
  std::vector<float> c_naive(static_cast<size_t>(s.n) * s.p, 0.0f);
  std::vector<float> c_packed(c_naive.size(), 0.0f);

  // Correctness first: one accumulating call each, compared bitwise.
  tensor::kernels::MatMulAddNaive(a.data(), b.data(), c_naive.data(), s.n,
                                  s.m, s.p, s.ta, s.tb);
  tensor::kernels::MatMulAdd(a.data(), b.data(), c_packed.data(), s.n, s.m,
                             s.p, s.ta, s.tb);
  GemmResult result;
  result.label = s.label;
  result.bit_identical =
      std::memcmp(c_naive.data(), c_packed.data(),
                  c_naive.size() * sizeof(float)) == 0;

  // Size the timed loop to a roughly constant op budget per shape.
  const double target_ops = smoke ? 4e7 : 4e8;
  const double ops = 2.0 * s.n * s.m * s.p;
  const int iters = std::max(1, static_cast<int>(target_ops / ops));
  const int repeats = smoke ? 3 : 5;
  result.naive_gflops =
      MeasureGflops(tensor::kernels::MatMulAddNaive, a, b, c_naive, s, iters,
                    repeats);
  result.packed_gflops = MeasureGflops(tensor::kernels::MatMulAdd, a, b,
                                       c_packed, s, iters, repeats);
  result.speedup = result.packed_gflops / result.naive_gflops;
  return result;
}

// ---------------------------------------------------------------------------
// Section 2: TopK selection

struct TopKResult {
  int catalog = 0;
  int k = 0;
  double heap_us = 0.0;
  double sort_us = 0.0;
  double speedup = 0.0;
  bool identical = true;
};

std::vector<int> TopKFullSort(const std::vector<float>& scores, int k) {
  std::vector<int> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&scores](int a, int b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  order.resize(std::min<size_t>(k, order.size()));
  return order;
}

TopKResult RunTopK(int catalog, int k, bool smoke) {
  Rng rng(7);
  // Coarse score grid → frequent exact ties, the tie-break's worst case.
  std::vector<float> scores(catalog);
  for (auto& s : scores)
    s = 0.01f * static_cast<float>(static_cast<int>(rng.Uniform(0, 1000)));
  TopKResult result;
  result.catalog = catalog;
  result.k = k;
  result.identical = eval::TopK(scores, k) == TopKFullSort(scores, k);

  const int iters = (smoke ? 50 : 500) * (catalog <= 1000 ? 10 : 1);
  const int repeats = smoke ? 3 : 5;
  double best_heap = 1e30, best_sort = 1e30;
  // The selections feed a volatile-style sink so the loops cannot be
  // hoisted; accumulate the first index instead of discarding results.
  long long sink = 0;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch sw;
    for (int i = 0; i < iters; ++i) sink += eval::TopK(scores, k)[0];
    best_heap = std::min(best_heap, sw.ElapsedSeconds());
  }
  for (int r = 0; r < repeats; ++r) {
    Stopwatch sw;
    for (int i = 0; i < iters; ++i) sink += TopKFullSort(scores, k)[0];
    best_sort = std::min(best_sort, sw.ElapsedSeconds());
  }
  if (sink == -1) std::printf("unreachable\n");
  result.heap_us = best_heap / iters * 1e6;
  result.sort_us = best_sort / iters * 1e6;
  result.speedup = result.sort_us / result.heap_us;
  return result;
}

// ---------------------------------------------------------------------------
// Section 3: end-to-end training with/without the arena

const data::Dataset& BenchData() {
  static data::Dataset d = [] {
    data::DatasetSpec spec = data::TinySpec();
    spec.num_users = 200;
    spec.num_items = 120;
    spec.num_clusters = 8;
    spec.min_len = 4;
    spec.max_len = 12;
    return data::MakeDataset(spec);
  }();
  return d;
}

const data::Split& BenchSplit() {
  static data::Split s = data::LeaveLastOut(BenchData());
  return s;
}

struct TrainResult {
  double steps_per_sec_arena_off = 0.0;
  double steps_per_sec_arena_on = 0.0;
  double speedup = 0.0;
  bool losses_bit_identical = true;
};

TrainResult RunTraining(bool smoke) {
  const int epochs = smoke ? 2 : 4;
  const int steps_per_epoch =
      static_cast<int>(data::EnumerateExamples(BenchSplit().train).size());
  // Best-of-epochs: each epoch does identical work, so the fastest one is
  // the least-noise estimate of the steady-state step rate.
  auto run = [&](bool arena_on, std::vector<double>& losses) {
    tensor::SetArenaEnabled(arena_on);
    models::Gru4Rec model(bench::BaseConfig(BenchData()));
    model.TrainEpoch(BenchSplit().train);  // warm-up (allocations, caches)
    losses.clear();
    double best_seconds = 1e30;
    for (int e = 0; e < epochs; ++e) {
      Stopwatch sw;
      losses.push_back(model.TrainEpoch(BenchSplit().train));
      best_seconds = std::min(best_seconds, sw.ElapsedSeconds());
    }
    return steps_per_epoch / best_seconds;
  };
  TrainResult result;
  std::vector<double> losses_off, losses_on;
  result.steps_per_sec_arena_off = run(false, losses_off);
  result.steps_per_sec_arena_on = run(true, losses_on);
  tensor::SetArenaEnabled(true);
  result.speedup =
      result.steps_per_sec_arena_on / result.steps_per_sec_arena_off;
  result.losses_bit_identical = losses_on == losses_off;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  bench::PrintHeader(
      "Kernel & memory engine: packed GEMM, heap TopK, autograd arena",
      "Wang et al., ICDE 2023 (engine optimization; no paper figure)");
  SetDefaultThreads(1);  // microkernel numbers, not parallel scaling

  bool ok = true;

  std::printf("GEMM (single thread, best-of-n):\n");
  std::printf("%-28s %12s %12s %9s %6s\n", "shape", "naive GF/s",
              "packed GF/s", "speedup", "exact");
  std::vector<std::string> gemm_rows;
  double gate_speedup = 0.0;
  for (const GemmShape& s : kGemmShapes) {
    GemmResult r = RunGemmShape(s, smoke);
    ok = ok && r.bit_identical;
    if (r.label == kSmokeGateLabel) gate_speedup = r.speedup;
    std::printf("%-28s %12.2f %12.2f %8.2fx %6s\n", r.label.c_str(),
                r.naive_gflops, r.packed_gflops, r.speedup,
                r.bit_identical ? "yes" : "NO");
    bench::JsonObject row;
    row.Set("shape", r.label)
        .Set("naive_gflops", r.naive_gflops)
        .Set("packed_gflops", r.packed_gflops)
        .Set("speedup", r.speedup)
        .Set("bit_identical", r.bit_identical);
    gemm_rows.push_back(row.Str());
  }

  std::printf("\nTopK (catalog argmax-k, per call):\n");
  std::printf("%8s %4s %12s %12s %9s %6s\n", "catalog", "k", "heap us",
              "sort us", "speedup", "exact");
  std::vector<std::string> topk_rows;
  for (int catalog : {1000, 10000}) {
    for (int k : {5, 20}) {
      TopKResult r = RunTopK(catalog, k, smoke);
      ok = ok && r.identical;
      std::printf("%8d %4d %12.2f %12.2f %8.2fx %6s\n", r.catalog, r.k,
                  r.heap_us, r.sort_us, r.speedup,
                  r.identical ? "yes" : "NO");
      bench::JsonObject row;
      row.Set("catalog", r.catalog)
          .Set("k", r.k)
          .Set("heap_us_per_call", r.heap_us)
          .Set("full_sort_us_per_call", r.sort_us)
          .Set("speedup", r.speedup)
          .Set("identical_to_full_sort", r.identical);
      topk_rows.push_back(row.Str());
    }
  }

  std::printf("\nTrainEpoch (GRU4Rec, batch_size 1, single thread):\n");
  TrainResult train = RunTraining(smoke);
  ok = ok && train.losses_bit_identical;
  std::printf("  arena off: %8.1f steps/s\n", train.steps_per_sec_arena_off);
  std::printf("  arena on:  %8.1f steps/s  (%.2fx, losses %s)\n",
              train.steps_per_sec_arena_on, train.speedup,
              train.losses_bit_identical ? "bit-identical" : "DIVERGED");

  bench::JsonObject report;
  report.Set("bench", std::string("bench_kernels"))
      .Set("smoke", smoke)
      .Set("threads", 1)
      .SetRaw("gemm", bench::JsonArray(gemm_rows))
      .SetRaw("topk", bench::JsonArray(topk_rows));
  bench::JsonObject train_row;
  train_row.Set("workload",
                std::string("TinySpec scaled to 200 users / 120 items, "
                            "GRU4Rec, batch_size 1"))
      .Set("steps_per_sec_arena_off", train.steps_per_sec_arena_off)
      .Set("steps_per_sec_arena_on", train.steps_per_sec_arena_on)
      .Set("arena_speedup", train.speedup)
      .Set("losses_bit_identical", train.losses_bit_identical);
  report.SetRaw("train_epoch", train_row.Str());
  report.Set("packed_vs_naive_gate_shape", std::string(kSmokeGateLabel))
      .Set("packed_vs_naive_gate_speedup", gate_speedup);
  if (!bench::WriteTextFile(out_path, report.Str())) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nreport -> %s\n", out_path.c_str());

  if (!ok) {
    std::fprintf(stderr,
                 "FATAL: an equivalence check failed (see NO/DIVERGED rows "
                 "above)\n");
    return 1;
  }
  if (smoke && gate_speedup < 1.0) {
    std::fprintf(stderr,
                 "FATAL: packed kernel slower than naive on %s "
                 "(%.2fx)\n",
                 kSmokeGateLabel, gate_speedup);
    return 1;
  }
  return 0;
}
