// Kernel & memory engine benchmark: packed matmul microkernels, heap TopK
// selection, and the autograd arena allocator.
//
// Three sections, all single-process:
//   (1) GEMM: naive reference kernel vs. the packed/blocked production
//       kernel on every compiled+supported ISA tier (scalar / avx2 /
//       avx512, pinned per measurement via cpu::SetIsaOverride; single
//       thread, so the number is the microkernel itself, not parallelism),
//       with a bitwise-equality check per shape and tier;
//   (2) TopK: bounded-heap selection vs. a full argsort of the catalog;
//   (3) fused top-k on the serving shape (32x64 states against a 4096x64
//       item table, k=10): the fp32 MatMulTopK vs. the unfused
//       materialize-then-TopK path (smoke gate: fused must not regress
//       below unfused), and the int8 MatMulTopKQ per ISA tier with a
//       cross-tier determinism check;
//   (4) end-to-end: GRU4Rec TrainEpoch steps/sec with the arena enabled vs.
//       disabled, asserting bit-identical epoch losses either way.
//
// Writes a BENCH_kernels.json report (path = argv[last], default
// ./BENCH_kernels.json) including the resolved ISA selection and the
// per-tier GFLOP/s rows the docs/KERNELS.md table is refreshed from.
//
// `--smoke` shrinks the timed work for CI and turns three checks into the
// exit code: packed must not be slower than naive on the large transpose-B
// shape, the avx2 tier must beat scalar by kSimdGateMinSpeedup on the
// same shape (skipped with a notice when the runner lacks AVX2), and the
// fused fp32 MatMulTopK must not regress below the unfused
// materialize-then-TopK path on the serving shape.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/cpu.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "eval/metrics.h"
#include "tensor/arena.h"
#include "tensor/kernels.h"
#include "tensor/quant.h"

namespace {

using namespace causer;

// ---------------------------------------------------------------------------
// Section 1: GEMM microkernels

struct GemmShape {
  const char* label;
  int n, m, p;
  bool ta, tb;
};

// The transpose-B shapes are the hot ones: every backward pass computes
// dA = dC · B^T, and full-catalog scoring is a [1, h] · [catalog, h]^T
// product. The large tb entry is the smoke-test gate.
const GemmShape kGemmShapes[] = {
    {"forward_64x64x64", 64, 64, 64, false, false},
    {"forward_33x128x128", 33, 128, 128, false, false},
    {"grad_b_transA_64x512x64", 64, 512, 64, true, false},
    {"grad_a_transB_64x64x512", 64, 64, 512, false, true},
    {"score_row_transB_1x64x512", 1, 64, 512, false, true},
};
const char* kSmokeGateLabel = "grad_a_transB_64x64x512";

// Smoke gate on the explicit-SIMD layer: AVX2 must beat the scalar tier by
// at least this factor on the gate shape (the scalar tier still
// auto-vectorizes at the SSE2 baseline, so this is 256-bit explicit
// intrinsics vs. 128-bit compiler output, not vs. straight-line code).
constexpr double kSimdGateMinSpeedup = 1.5;

/// One ISA tier's numbers on one shape, measured through the production
/// MatMulAdd with that tier pinned via cpu::SetIsaOverride.
struct IsaGemm {
  std::string isa;
  double gflops = 0.0;
  double speedup_vs_naive = 0.0;
  bool bit_identical = true;
};

struct GemmResult {
  std::string label;
  double naive_gflops = 0.0;
  std::vector<IsaGemm> variants;  // every compiled+supported tier
  double packed_gflops = 0.0;     // the auto-selected (strongest) tier
  double speedup = 0.0;
  bool bit_identical = true;
};

std::vector<float> RandomBuffer(size_t size, Rng& rng) {
  std::vector<float> out(size);
  for (auto& v : out) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  return out;
}

// Best-of-`repeats` GFLOP/s for one kernel entry point on one shape.
template <typename KernelFn>
double MeasureGflops(KernelFn&& kernel, const std::vector<float>& a,
                     const std::vector<float>& b, std::vector<float>& c,
                     const GemmShape& s, int iters, int repeats) {
  double best_seconds = 1e30;
  for (int r = 0; r < repeats; ++r) {
    std::fill(c.begin(), c.end(), 0.0f);
    Stopwatch sw;
    for (int i = 0; i < iters; ++i)
      kernel(a.data(), b.data(), c.data(), s.n, s.m, s.p, s.ta, s.tb);
    best_seconds = std::min(best_seconds, sw.ElapsedSeconds());
  }
  const double flops =
      2.0 * s.n * s.m * s.p * static_cast<double>(iters);
  return flops / best_seconds / 1e9;
}

GemmResult RunGemmShape(const GemmShape& s, bool smoke) {
  Rng rng(42);
  auto a = RandomBuffer(static_cast<size_t>(s.n) * s.m, rng);
  auto b = RandomBuffer(static_cast<size_t>(s.m) * s.p, rng);
  std::vector<float> c_naive(static_cast<size_t>(s.n) * s.p, 0.0f);
  std::vector<float> c_packed(c_naive.size(), 0.0f);

  tensor::kernels::MatMulAddNaive(a.data(), b.data(), c_naive.data(), s.n,
                                  s.m, s.p, s.ta, s.tb);
  // Timed loops clobber c_naive below; keep the single-call result as the
  // reference for the per-tier bitwise checks.
  const std::vector<float> c_ref = c_naive;
  GemmResult result;
  result.label = s.label;

  // Size the timed loop to a roughly constant op budget per shape.
  const double target_ops = smoke ? 4e7 : 4e8;
  const double ops = 2.0 * s.n * s.m * s.p;
  const int iters = std::max(1, static_cast<int>(target_ops / ops));
  const int repeats = smoke ? 3 : 5;
  result.naive_gflops =
      MeasureGflops(tensor::kernels::MatMulAddNaive, a, b, c_naive, s, iters,
                    repeats);

  // Every runnable tier through the production kernel: correctness first
  // (one accumulating call compared bitwise against naive), then timing.
  for (cpu::Isa isa : cpu::CompiledIsas()) {
    if (!cpu::IsaSupported(isa)) continue;
    cpu::SetIsaOverride(cpu::IsaName(isa));
    IsaGemm v;
    v.isa = cpu::IsaName(isa);
    std::fill(c_packed.begin(), c_packed.end(), 0.0f);
    tensor::kernels::MatMulAdd(a.data(), b.data(), c_packed.data(), s.n, s.m,
                               s.p, s.ta, s.tb);
    v.bit_identical = std::memcmp(c_ref.data(), c_packed.data(),
                                  c_ref.size() * sizeof(float)) == 0;
    v.gflops = MeasureGflops(tensor::kernels::MatMulAdd, a, b, c_packed, s,
                             iters, repeats);
    v.speedup_vs_naive = v.gflops / result.naive_gflops;
    result.variants.push_back(std::move(v));
  }
  cpu::SetIsaOverride("auto");

  // The strongest tier is what auto-dispatch selects; keep it as the
  // headline packed number so the naive-vs-packed gate stays meaningful.
  result.bit_identical = true;
  for (const IsaGemm& v : result.variants) {
    result.bit_identical = result.bit_identical && v.bit_identical;
  }
  if (!result.variants.empty()) {
    result.packed_gflops = result.variants.back().gflops;
    result.speedup = result.variants.back().speedup_vs_naive;
  }
  return result;
}

/// The per-variant gflops for `isa` on a measured shape, or 0 if that tier
/// did not run (not compiled / not supported on this machine).
double VariantGflops(const GemmResult& r, const char* isa) {
  for (const IsaGemm& v : r.variants) {
    if (v.isa == isa) return v.gflops;
  }
  return 0.0;
}

// ---------------------------------------------------------------------------
// Section 2: TopK selection

struct TopKResult {
  int catalog = 0;
  int k = 0;
  double heap_us = 0.0;
  double sort_us = 0.0;
  double speedup = 0.0;
  bool identical = true;
};

std::vector<int> TopKFullSort(const std::vector<float>& scores, int k) {
  std::vector<int> order(scores.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&scores](int a, int b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  order.resize(std::min<size_t>(k, order.size()));
  return order;
}

TopKResult RunTopK(int catalog, int k, bool smoke) {
  Rng rng(7);
  // Coarse score grid → frequent exact ties, the tie-break's worst case.
  std::vector<float> scores(catalog);
  for (auto& s : scores)
    s = 0.01f * static_cast<float>(static_cast<int>(rng.Uniform(0, 1000)));
  TopKResult result;
  result.catalog = catalog;
  result.k = k;
  result.identical = eval::TopK(scores, k) == TopKFullSort(scores, k);

  const int iters = (smoke ? 50 : 500) * (catalog <= 1000 ? 10 : 1);
  const int repeats = smoke ? 3 : 5;
  double best_heap = 1e30, best_sort = 1e30;
  // The selections feed a volatile-style sink so the loops cannot be
  // hoisted; accumulate the first index instead of discarding results.
  long long sink = 0;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch sw;
    for (int i = 0; i < iters; ++i) sink += eval::TopK(scores, k)[0];
    best_heap = std::min(best_heap, sw.ElapsedSeconds());
  }
  for (int r = 0; r < repeats; ++r) {
    Stopwatch sw;
    for (int i = 0; i < iters; ++i) sink += TopKFullSort(scores, k)[0];
    best_sort = std::min(best_sort, sw.ElapsedSeconds());
  }
  if (sink == -1) std::printf("unreachable\n");
  result.heap_us = best_heap / iters * 1e6;
  result.sort_us = best_sort / iters * 1e6;
  result.speedup = result.sort_us / result.heap_us;
  return result;
}

// ---------------------------------------------------------------------------
// Section 3: end-to-end training with/without the arena

const data::Dataset& BenchData() {
  static data::Dataset d = [] {
    data::DatasetSpec spec = data::TinySpec();
    spec.num_users = 200;
    spec.num_items = 120;
    spec.num_clusters = 8;
    spec.min_len = 4;
    spec.max_len = 12;
    return data::MakeDataset(spec);
  }();
  return d;
}

const data::Split& BenchSplit() {
  static data::Split s = data::LeaveLastOut(BenchData());
  return s;
}

struct TrainResult {
  double steps_per_sec_arena_off = 0.0;
  double steps_per_sec_arena_on = 0.0;
  double speedup = 0.0;
  bool losses_bit_identical = true;
};

TrainResult RunTraining(bool smoke) {
  const int epochs = smoke ? 2 : 4;
  const int steps_per_epoch =
      static_cast<int>(data::EnumerateExamples(BenchSplit().train).size());
  // Best-of-epochs: each epoch does identical work, so the fastest one is
  // the least-noise estimate of the steady-state step rate.
  auto run = [&](bool arena_on, std::vector<double>& losses) {
    tensor::SetArenaEnabled(arena_on);
    models::Gru4Rec model(bench::BaseConfig(BenchData()));
    model.TrainEpoch(BenchSplit().train);  // warm-up (allocations, caches)
    losses.clear();
    double best_seconds = 1e30;
    for (int e = 0; e < epochs; ++e) {
      Stopwatch sw;
      losses.push_back(model.TrainEpoch(BenchSplit().train));
      best_seconds = std::min(best_seconds, sw.ElapsedSeconds());
    }
    return steps_per_epoch / best_seconds;
  };
  TrainResult result;
  std::vector<double> losses_off, losses_on;
  result.steps_per_sec_arena_off = run(false, losses_off);
  result.steps_per_sec_arena_on = run(true, losses_on);
  tensor::SetArenaEnabled(true);
  result.speedup =
      result.steps_per_sec_arena_on / result.steps_per_sec_arena_off;
  result.losses_bit_identical = losses_on == losses_off;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  bench::PrintHeader(
      "Kernel & memory engine: packed GEMM, heap TopK, autograd arena",
      "Wang et al., ICDE 2023 (engine optimization; no paper figure)");
  SetDefaultThreads(1);  // microkernel numbers, not parallel scaling

  bool ok = true;

  const cpu::IsaSelection selection = cpu::ActiveSelection();
  std::printf("cpu ISA: active=%s (source=%s%s), compiled:",
              cpu::IsaName(selection.active),
              selection.source == cpu::IsaSource::kFlag  ? "flag"
              : selection.source == cpu::IsaSource::kEnv ? "env"
                                                         : "cpuid",
              selection.fell_back ? ", fell back" : "");
  for (cpu::Isa isa : cpu::CompiledIsas()) {
    std::printf(" %s%s", cpu::IsaName(isa),
                cpu::IsaSupported(isa) ? "" : "(unsupported here)");
  }
  std::printf("\n\n");

  std::printf("GEMM (single thread, best-of-n, per ISA tier):\n");
  std::printf("%-28s %12s %12s %12s %12s %9s %6s\n", "shape", "naive GF/s",
              "scalar GF/s", "avx2 GF/s", "avx512 GF/s", "speedup", "exact");
  std::vector<std::string> gemm_rows;
  double gate_speedup = 0.0;
  double gate_scalar_gflops = 0.0, gate_avx2_gflops = 0.0;
  for (const GemmShape& s : kGemmShapes) {
    GemmResult r = RunGemmShape(s, smoke);
    ok = ok && r.bit_identical;
    if (r.label == kSmokeGateLabel) {
      gate_speedup = r.speedup;
      gate_scalar_gflops = VariantGflops(r, "scalar");
      gate_avx2_gflops = VariantGflops(r, "avx2");
    }
    std::printf("%-28s %12.2f %12.2f %12.2f %12.2f %8.2fx %6s\n",
                r.label.c_str(), r.naive_gflops, VariantGflops(r, "scalar"),
                VariantGflops(r, "avx2"), VariantGflops(r, "avx512"),
                r.speedup, r.bit_identical ? "yes" : "NO");
    std::vector<std::string> variant_rows;
    for (const IsaGemm& v : r.variants) {
      bench::JsonObject vrow;
      vrow.Set("isa", v.isa)
          .Set("gflops", v.gflops)
          .Set("speedup_vs_naive", v.speedup_vs_naive)
          .Set("bit_identical", v.bit_identical);
      variant_rows.push_back(vrow.Str());
    }
    bench::JsonObject row;
    row.Set("shape", r.label)
        .Set("naive_gflops", r.naive_gflops)
        .Set("packed_gflops", r.packed_gflops)
        .Set("speedup", r.speedup)
        .Set("bit_identical", r.bit_identical)
        .SetRaw("variants", bench::JsonArray(variant_rows));
    gemm_rows.push_back(row.Str());
  }

  std::printf("\nTopK (catalog argmax-k, per call):\n");
  std::printf("%8s %4s %12s %12s %9s %6s\n", "catalog", "k", "heap us",
              "sort us", "speedup", "exact");
  std::vector<std::string> topk_rows;
  for (int catalog : {1000, 10000}) {
    for (int k : {5, 20}) {
      TopKResult r = RunTopK(catalog, k, smoke);
      ok = ok && r.identical;
      std::printf("%8d %4d %12.2f %12.2f %8.2fx %6s\n", r.catalog, r.k,
                  r.heap_us, r.sort_us, r.speedup,
                  r.identical ? "yes" : "NO");
      bench::JsonObject row;
      row.Set("catalog", r.catalog)
          .Set("k", r.k)
          .Set("heap_us_per_call", r.heap_us)
          .Set("full_sort_us_per_call", r.sort_us)
          .Set("speedup", r.speedup)
          .Set("identical_to_full_sort", r.identical);
      topk_rows.push_back(row.Str());
    }
  }

  // -- Fused top-k on the serving shape: fp32 vs unfused, int8 per tier ----
  constexpr int kTopKN = 32, kTopKM = 64, kTopKP = 4096, kTopKK = 10;
  double fused_vs_unfused = 0.0;
  std::vector<std::string> quant_rows;
  {
    Rng rng(11);
    auto a = RandomBuffer(static_cast<size_t>(kTopKN) * kTopKM, rng);
    auto b = RandomBuffer(static_cast<size_t>(kTopKP) * kTopKM, rng);
    tensor::QuantizedMatrix qa, qb;
    ok = ok && tensor::QuantizeRows(a.data(), kTopKN, kTopKM, &qa) &&
         tensor::QuantizeRows(b.data(), kTopKP, kTopKM, &qb);
    const int iters = smoke ? 20 : 200;
    const int repeats = smoke ? 3 : 5;
    std::vector<tensor::kernels::TopKEntry> fused(
        static_cast<size_t>(kTopKN) * kTopKK);
    std::vector<tensor::kernels::TopKEntry> quant(fused.size());
    long long sink = 0;

    // Unfused reference on the auto-selected tier: materialize the [B, V]
    // score matrix, then bounded-heap TopK per row. The fused kernel must
    // never lose to it — this is the regression assertion guarding the
    // MatMulTopK tile loop (hoisted tile pointers and all).
    std::vector<float> score_matrix(static_cast<size_t>(kTopKN) * kTopKP);
    std::vector<float> row_scores(kTopKP);
    double best_unfused = 1e30, best_fused_auto = 1e30;
    for (int r = 0; r < repeats; ++r) {
      Stopwatch sw;
      for (int i = 0; i < iters; ++i) {
        std::fill(score_matrix.begin(), score_matrix.end(), 0.0f);
        tensor::kernels::MatMulAdd(a.data(), b.data(), score_matrix.data(),
                                   kTopKN, kTopKM, kTopKP, false, true);
        for (int row = 0; row < kTopKN; ++row) {
          const float* src = score_matrix.data() +
                             static_cast<size_t>(row) * kTopKP;
          row_scores.assign(src, src + kTopKP);
          sink += eval::TopK(row_scores, kTopKK)[0];
        }
      }
      best_unfused = std::min(best_unfused, sw.ElapsedSeconds());
    }
    for (int r = 0; r < repeats; ++r) {
      Stopwatch sw;
      for (int i = 0; i < iters; ++i) {
        tensor::kernels::MatMulTopK(a.data(), b.data(), kTopKN, kTopKM,
                                    kTopKP, kTopKK, fused.data());
        sink += fused[0].index;
      }
      best_fused_auto = std::min(best_fused_auto, sw.ElapsedSeconds());
    }
    fused_vs_unfused = best_unfused / best_fused_auto;

    // Per-tier rows: fp32 fused vs int8 fused, plus the cross-tier
    // determinism check (int32 accumulation is exact, so every tier must
    // reproduce the scalar tier's entries bit-for-bit).
    std::vector<tensor::kernels::TopKEntry> quant_scalar(quant.size());
    cpu::SetIsaOverride("scalar");
    tensor::kernels::MatMulTopKQ(qa.data.data(), qa.scales.data(),
                                 qb.data.data(), qb.scales.data(), kTopKN,
                                 kTopKM, kTopKP, kTopKK, quant_scalar.data());
    std::printf(
        "\nFused top-k (n=%d, d=%d, catalog %d, k=%d, us per call):\n",
        kTopKN, kTopKM, kTopKP, kTopKK);
    std::printf("%-8s %12s %12s %9s %6s\n", "isa", "fp32 us", "int8 us",
                "speedup", "exact");
    for (cpu::Isa isa : cpu::CompiledIsas()) {
      if (!cpu::IsaSupported(isa)) continue;
      cpu::SetIsaOverride(cpu::IsaName(isa));
      tensor::kernels::MatMulTopKQ(qa.data.data(), qa.scales.data(),
                                   qb.data.data(), qb.scales.data(), kTopKN,
                                   kTopKM, kTopKP, kTopKK, quant.data());
      bool tier_exact = true;
      for (size_t e = 0; e < quant.size(); ++e) {
        tier_exact = tier_exact &&
                     quant[e].index == quant_scalar[e].index &&
                     std::memcmp(&quant[e].score, &quant_scalar[e].score,
                                 sizeof(float)) == 0;
      }
      ok = ok && tier_exact;
      double best_fused = 1e30, best_quant = 1e30;
      for (int r = 0; r < repeats; ++r) {
        Stopwatch sw;
        for (int i = 0; i < iters; ++i) {
          tensor::kernels::MatMulTopK(a.data(), b.data(), kTopKN, kTopKM,
                                      kTopKP, kTopKK, fused.data());
          sink += fused[0].index;
        }
        best_fused = std::min(best_fused, sw.ElapsedSeconds());
      }
      for (int r = 0; r < repeats; ++r) {
        Stopwatch sw;
        for (int i = 0; i < iters; ++i) {
          tensor::kernels::MatMulTopKQ(qa.data.data(), qa.scales.data(),
                                       qb.data.data(), qb.scales.data(),
                                       kTopKN, kTopKM, kTopKP, kTopKK,
                                       quant.data());
          sink += quant[0].index;
        }
        best_quant = std::min(best_quant, sw.ElapsedSeconds());
      }
      std::printf("%-8s %12.1f %12.1f %8.2fx %6s\n", cpu::IsaName(isa),
                  best_fused / iters * 1e6, best_quant / iters * 1e6,
                  best_fused / best_quant, tier_exact ? "yes" : "NO");
      bench::JsonObject row;
      row.Set("isa", std::string(cpu::IsaName(isa)))
          .Set("fp32_us_per_call", best_fused / iters * 1e6)
          .Set("int8_us_per_call", best_quant / iters * 1e6)
          .Set("int8_speedup", best_fused / best_quant)
          .Set("matches_scalar_tier", tier_exact);
      quant_rows.push_back(row.Str());
    }
    cpu::SetIsaOverride("auto");
    if (sink == -1) std::printf("unreachable\n");
    std::printf("  fp32 fused vs unfused (auto tier): %.2fx\n",
                fused_vs_unfused);
  }

  std::printf("\nTrainEpoch (GRU4Rec, batch_size 1, single thread):\n");
  TrainResult train = RunTraining(smoke);
  ok = ok && train.losses_bit_identical;
  std::printf("  arena off: %8.1f steps/s\n", train.steps_per_sec_arena_off);
  std::printf("  arena on:  %8.1f steps/s  (%.2fx, losses %s)\n",
              train.steps_per_sec_arena_on, train.speedup,
              train.losses_bit_identical ? "bit-identical" : "DIVERGED");

  std::vector<std::string> compiled_names, supported_names;
  for (cpu::Isa isa : cpu::CompiledIsas()) {
    compiled_names.push_back(bench::JsonObject::Quote(cpu::IsaName(isa)));
    if (cpu::IsaSupported(isa)) {
      supported_names.push_back(bench::JsonObject::Quote(cpu::IsaName(isa)));
    }
  }
  bench::JsonObject isa_info;
  isa_info.Set("active", std::string(cpu::IsaName(selection.active)))
      .Set("source", std::string(selection.source == cpu::IsaSource::kFlag
                                     ? "flag"
                                 : selection.source == cpu::IsaSource::kEnv
                                     ? "env"
                                     : "cpuid"))
      .Set("fell_back", selection.fell_back)
      .SetRaw("compiled", bench::JsonArray(compiled_names))
      .SetRaw("supported", bench::JsonArray(supported_names));

  bench::JsonObject report;
  report.Set("bench", std::string("bench_kernels"))
      .Set("smoke", smoke)
      .Set("threads", 1)
      .SetRaw("cpu_isa", isa_info.Str())
      .SetRaw("gemm", bench::JsonArray(gemm_rows))
      .SetRaw("topk", bench::JsonArray(topk_rows));
  bench::JsonObject topk_fused_row;
  topk_fused_row.Set("n", kTopKN)
      .Set("m", kTopKM)
      .Set("catalog", kTopKP)
      .Set("k", kTopKK)
      .Set("fp32_fused_vs_unfused_speedup", fused_vs_unfused)
      .SetRaw("quant_variants", bench::JsonArray(quant_rows));
  report.SetRaw("topk_fused", topk_fused_row.Str());
  bench::JsonObject train_row;
  train_row.Set("workload",
                std::string("TinySpec scaled to 200 users / 120 items, "
                            "GRU4Rec, batch_size 1"))
      .Set("steps_per_sec_arena_off", train.steps_per_sec_arena_off)
      .Set("steps_per_sec_arena_on", train.steps_per_sec_arena_on)
      .Set("arena_speedup", train.speedup)
      .Set("losses_bit_identical", train.losses_bit_identical);
  report.SetRaw("train_epoch", train_row.Str());
  report.Set("packed_vs_naive_gate_shape", std::string(kSmokeGateLabel))
      .Set("packed_vs_naive_gate_speedup", gate_speedup);
  if (!bench::WriteTextFile(out_path, report.Str())) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nreport -> %s\n", out_path.c_str());

  if (!ok) {
    std::fprintf(stderr,
                 "FATAL: an equivalence check failed (see NO/DIVERGED rows "
                 "above)\n");
    return 1;
  }
  if (smoke && gate_speedup < 1.0) {
    std::fprintf(stderr,
                 "FATAL: packed kernel slower than naive on %s "
                 "(%.2fx)\n",
                 kSmokeGateLabel, gate_speedup);
    return 1;
  }
  if (smoke && fused_vs_unfused < 1.0) {
    std::fprintf(stderr,
                 "FATAL: fused MatMulTopK slower than materialize+TopK on "
                 "the serving shape (%.2fx)\n",
                 fused_vs_unfused);
    return 1;
  }
  if (smoke) {
    if (gate_avx2_gflops <= 0.0) {
      // Skip-with-notice, not silent: runners without AVX2 can't measure
      // the SIMD gate, and pretending they did would hide a regression.
      std::fprintf(stderr,
                   "notice: avx2 tier unavailable on this runner; skipping "
                   "the avx2-vs-scalar gate on %s\n",
                   kSmokeGateLabel);
    } else if (gate_avx2_gflops < kSimdGateMinSpeedup * gate_scalar_gflops) {
      std::fprintf(stderr,
                   "FATAL: avx2 tier only %.2fx scalar on %s "
                   "(%.2f vs %.2f GF/s, gate %.1fx)\n",
                   gate_avx2_gflops / gate_scalar_gflops, kSmokeGateLabel,
                   gate_avx2_gflops, gate_scalar_gflops, kSimdGateMinSpeedup);
      return 1;
    }
  }
  return 0;
}
