// Reproduces Fig. 8: qualitative case studies of recommendation
// explanations. For several test interactions with a known true cause, the
// bench prints the history with each system's top-1 explanation: Causer,
// Causer(-att), Causer(-causal), and NARM's attention — mirroring the
// paper's four case studies (toilet seat <- baby toilet etc.; here item
// identities are synthetic, annotated by their latent cluster).

#include <cstdio>

#include "bench_util.h"
#include "core/explainer.h"
#include "eval/explanation_eval.h"

namespace {

int ArgMax(const std::vector<double>& v) {
  int best = 0;
  for (size_t i = 1; i < v.size(); ++i)
    if (v[i] > v[best]) best = static_cast<int>(i);
  return best;
}

}  // namespace

int main() {
  using namespace causer;
  bench::PrintHeader("Fig. 8: qualitative explanation case studies (Baby)",
                     "paper Fig. 8");

  auto dataset = data::MakeDataset(data::SpecFor(data::PaperDataset::kBaby));
  auto split = data::LeaveLastOut(dataset);
  auto tc = bench::CauserTrainConfig();

  auto full_cfg = bench::TunedCauserConfig(dataset, core::Backbone::kGru);
  core::CauserModel full(full_cfg);
  core::TrainCauser(full, split, tc);

  auto na_cfg = full_cfg;
  na_cfg.use_attention = false;
  core::CauserModel no_att(na_cfg);
  core::TrainCauser(no_att, split, tc);

  auto nc_cfg = full_cfg;
  nc_cfg.use_causal = false;
  core::CauserModel no_causal(nc_cfg);
  core::TrainCauser(no_causal, split, tc);

  models::Narm narm(bench::BaseConfig(dataset));
  models::Fit(narm, split, bench::BaselineTrainConfig());

  Rng rng(41);
  auto examples = eval::BuildExplanationSet(split.test, dataset, 400, rng);

  auto item_label = [&](int item) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "item %d (cluster %d)", item,
                  dataset.item_true_cluster[item]);
    return std::string(buf);
  };

  int printed = 0;
  int full_hits = 0, no_att_hits = 0, no_causal_hits = 0, narm_hits = 0;
  int cases = 0;
  auto narm_explainer = core::MakeNarmExplainer(narm);
  for (const auto& ex : examples) {
    const auto& inst = *ex.instance;
    if (inst.history.size() < 3) continue;
    ++cases;
    auto pick = [&](core::CauserModel& m, core::ExplainMode mode) {
      return ArgMax(m.ExplainScores(inst, ex.target_item, mode));
    };
    int c_full = pick(full, core::ExplainMode::kFull);
    int c_noatt = pick(no_att, core::ExplainMode::kCausal);
    int c_nocausal = pick(no_causal, core::ExplainMode::kAttention);
    int c_narm = ArgMax(narm_explainer(inst, ex.target_item));
    auto is_hit = [&](int pos) {
      for (int p : ex.true_cause_positions)
        if (p == pos) return true;
      return false;
    };
    full_hits += is_hit(c_full);
    no_att_hits += is_hit(c_noatt);
    no_causal_hits += is_hit(c_nocausal);
    narm_hits += is_hit(c_narm);

    if (printed < 4) {
      ++printed;
      std::printf("\nCase %d: user %d, target %s\n", printed, inst.user,
                  item_label(ex.target_item).c_str());
      std::printf("  history:\n");
      for (size_t t = 0; t < inst.history.size(); ++t) {
        bool truth = is_hit(static_cast<int>(t));
        std::printf("    [%zu]%s", t, truth ? " <- TRUE CAUSE: " : " ");
        for (int item : inst.history[t].items)
          std::printf("%s  ", item_label(item).c_str());
        std::printf("\n");
      }
      auto verdict = [&](int pos) { return is_hit(pos) ? "correct" : "wrong"; };
      std::printf("  Causer          explains with step %d (%s)\n", c_full,
                  verdict(c_full));
      std::printf("  Causer (-att)   explains with step %d (%s)\n", c_noatt,
                  verdict(c_noatt));
      std::printf("  Causer (-causal) explains with step %d (%s)\n",
                  c_nocausal, verdict(c_nocausal));
      std::printf("  NARM attention  explains with step %d (%s)\n", c_narm,
                  verdict(c_narm));
    }
  }
  if (cases > 0) {
    std::printf("\nTop-1 explanation hit rate over %d cases:\n", cases);
    std::printf("  Causer           %5.1f%%\n", 100.0 * full_hits / cases);
    std::printf("  Causer (-att)    %5.1f%%\n", 100.0 * no_att_hits / cases);
    std::printf("  Causer (-causal) %5.1f%%\n", 100.0 * no_causal_hits / cases);
    std::printf("  NARM             %5.1f%%\n", 100.0 * narm_hits / cases);
  }
  std::printf(
      "\nShape check: the causal systems point at the true cause more often\n"
      "than the attention-only systems (paper Fig. 8's case studies).\n");
  return 0;
}
