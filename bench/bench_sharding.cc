// Sharded serving benchmark: catalog-sharded fused scoring and the
// hash-partitioned session store.
//
// Two sections, all single-process:
//   (1) scoring: one serving-shaped request (n = 1, d = 64, top-10)
//       against a ~1M-item catalog through MatMulTopKSharded (and the int8
//       sibling) at S in {1, 2, 4, 8, 16} and thread counts {1, 8}. The
//       unsharded kernel has no parallelism to offer a single row — its
//       row partition caps at n — so shard fan-out is the only way this
//       shape scales, and every sharded result is checked bit-identical
//       to unsharded first;
//   (2) store: concurrent Acquire throughput (hit path, the steady state)
//       through a single-mutex store vs an 8-way hash-partitioned one from
//       min(8, hardware) client threads.
//
// Scaling gates need cores: like bench_parallel, the report always records
// `hardware_threads` and the bit-exactness flags gate unconditionally, but
// the throughput gates (sharded >= 1.5x unsharded scoring in --smoke, 3x
// full; sharded store >= 2x single-mutex) are enforced only when the host
// has >= 2 physical workers (`gate_enforced` in the JSON says which ran) —
// on a 1-core runner a shard fan-out degenerates to the serial loop and
// the numbers are honest but flat.
//
// `--smoke` shrinks the catalog (65536 items) and repeats for CI; the full
// run uses 1,000,000 items. Writes BENCH_sharding.json (path = argv[last]).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "serve/session_store.h"
#include "tensor/kernels.h"
#include "tensor/quant.h"

namespace {

using namespace causer;
using tensor::kernels::TopKEntry;

constexpr int kDim = 64;
constexpr int kTopK = 10;
constexpr int kRows = 1;  // the single-request serving shape

bool BitIdentical(const std::vector<TopKEntry>& a,
                  const std::vector<TopKEntry>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].index != b[i].index) return false;
    if (std::memcmp(&a[i].score, &b[i].score, sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

double BestOf(int repeats, const std::function<void()>& fn) {
  double best = 1e30;
  for (int r = 0; r < repeats; ++r) {
    Stopwatch sw;
    fn();
    best = std::min(best, sw.ElapsedSeconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_sharding.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      out_path = argv[i];
    }
  }

  bench::PrintHeader(
      "Sharded scoring + sharded session store",
      "Wang et al., ICDE 2023 (serving scale-out; no paper figure)");
  const int hardware = std::max(
      1, static_cast<int>(std::thread::hardware_concurrency()));
  const int catalog = smoke ? 65536 : 1000000;
  const int repeats = smoke ? 3 : 5;
  // Throughput gates only mean something with workers to fan out to.
  const bool gate_enforced = hardware >= 2;
  const double scoring_gate = smoke ? 1.5 : 3.0;
  const double store_gate = 2.0;
  std::printf("hardware threads: %d   catalog: %d   scaling gates: %s\n",
              hardware, catalog, gate_enforced ? "enforced" : "recorded only");
  bool ok = true;

  // -- Section 1: sharded catalog scoring ---------------------------------
  std::vector<float> table(static_cast<size_t>(catalog) * kDim);
  std::vector<float> query(static_cast<size_t>(kRows) * kDim);
  {
    Rng rng(20260818);
    for (auto& v : table) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
    for (auto& v : query) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  tensor::QuantizedMatrix qtable;
  std::vector<std::int8_t> qquery(query.size());
  std::vector<float> qscales(kRows);
  if (!tensor::QuantizeRows(table.data(), catalog, kDim, &qtable) ||
      !tensor::QuantizeRows(query.data(), kRows, kDim, qquery.data(),
                            qscales.data())) {
    std::fprintf(stderr, "FATAL: quantization failed\n");
    return 1;
  }

  SetDefaultThreads(1);
  std::vector<TopKEntry> reference(static_cast<size_t>(kRows) * kTopK);
  tensor::kernels::MatMulTopK(query.data(), table.data(), kRows, kDim,
                              catalog, kTopK, reference.data());
  std::vector<TopKEntry> qreference(reference.size());
  tensor::kernels::MatMulTopKQ(qquery.data(), qscales.data(),
                               qtable.data.data(), qtable.scales.data(),
                               kRows, kDim, catalog, kTopK,
                               qreference.data());
  const double unsharded_seconds = BestOf(repeats, [&] {
    tensor::kernels::MatMulTopK(query.data(), table.data(), kRows, kDim,
                                catalog, kTopK, reference.data());
  });

  struct ShardPoint {
    int shards = 0;
    int threads = 0;
    double seconds = 0.0;
    double speedup = 0.0;
    bool exact_fp32 = false;
    bool exact_int8 = false;
  };
  std::vector<ShardPoint> points;
  std::printf("\nScoring a 1-row request, catalog %d, d=%d, top-%d:\n",
              catalog, kDim, kTopK);
  std::printf("  unsharded, 1 thread        : %9.2f ms  (baseline)\n",
              unsharded_seconds * 1e3);
  std::vector<TopKEntry> sharded(reference.size());
  std::vector<TopKEntry> qsharded(reference.size());
  for (int threads : {1, 8}) {
    SetDefaultThreads(threads);
    for (int shards : {2, 4, 8, 16}) {
      ShardPoint point;
      point.shards = shards;
      point.threads = threads;
      tensor::kernels::MatMulTopKSharded(query.data(), table.data(), kRows,
                                         kDim, catalog, kTopK, shards,
                                         sharded.data());
      point.exact_fp32 = BitIdentical(reference, sharded);
      tensor::kernels::MatMulTopKQSharded(
          qquery.data(), qscales.data(), qtable.data.data(),
          qtable.scales.data(), kRows, kDim, catalog, kTopK, shards,
          qsharded.data());
      point.exact_int8 = BitIdentical(qreference, qsharded);
      ok = ok && point.exact_fp32 && point.exact_int8;
      point.seconds = BestOf(repeats, [&] {
        tensor::kernels::MatMulTopKSharded(query.data(), table.data(),
                                           kRows, kDim, catalog, kTopK,
                                           shards, sharded.data());
      });
      point.speedup = unsharded_seconds / point.seconds;
      std::printf(
          "  S=%-3d %d thread%s          : %9.2f ms  (%5.2fx, exact fp32 "
          "%s int8 %s)\n",
          shards, threads, threads == 1 ? " " : "s", point.seconds * 1e3,
          point.speedup, point.exact_fp32 ? "yes" : "NO",
          point.exact_int8 ? "yes" : "NO");
      points.push_back(point);
    }
  }
  SetDefaultThreads(1);
  // The acceptance shape: S=8 at 8 threads vs the 1-thread baseline.
  double best_sharded_speedup = 0.0;
  for (const ShardPoint& point : points) {
    if (point.threads == 8) {
      best_sharded_speedup = std::max(best_sharded_speedup, point.speedup);
    }
  }
  std::printf("  best sharded speedup at 8 threads: %.2fx  (gate %.1fx, "
              "%s)\n",
              best_sharded_speedup, scoring_gate,
              gate_enforced ? "enforced" : "recorded");

  // -- Section 2: concurrent session-store acquire ------------------------
  // Hit-path throughput (the steady serving state): T client threads
  // re-acquiring a resident working set. The single-mutex store serializes
  // every lookup; the partitioned store only collides when two threads hash
  // to one shard.
  models::ModelConfig mconfig;
  mconfig.num_users = 4096;
  mconfig.num_items = 64;
  mconfig.embedding_dim = 8;
  mconfig.hidden_dim = 8;
  auto model = std::make_shared<models::Gru4Rec>(mconfig);
  const int store_threads = std::min(8, hardware);
  const int store_users = 1024;
  const int store_iters = smoke ? 2000 : 20000;
  auto store_ops_per_second = [&](int shards) {
    serve::SessionStore store(0, shards);
    for (int u = 0; u < store_users; ++u) {
      store.Acquire(u, nullptr, model, 1);
    }
    double best = 0.0;
    for (int r = 0; r < repeats; ++r) {
      std::vector<std::thread> workers;
      Stopwatch sw;
      for (int t = 0; t < store_threads; ++t) {
        workers.emplace_back([&, t] {
          for (int i = 0; i < store_iters; ++i) {
            store.Acquire((t * 131 + i * 7) % store_users, nullptr, model,
                          1);
          }
        });
      }
      for (auto& w : workers) w.join();
      const double ops =
          static_cast<double>(store_threads) * store_iters /
          sw.ElapsedSeconds();
      best = std::max(best, ops);
    }
    return best;
  };
  const double single_ops = store_ops_per_second(1);
  const double sharded_ops = store_ops_per_second(8);
  const double store_speedup = sharded_ops / single_ops;
  std::printf(
      "\nSession store, %d threads x %d hit-path acquires (%d users "
      "resident):\n",
      store_threads, store_iters, store_users);
  std::printf("  single mutex (1 shard)     : %9.0f acquires/s\n",
              single_ops);
  std::printf("  hash-partitioned (8 shards): %9.0f acquires/s  (%.2fx, "
              "gate %.1fx, %s)\n",
              sharded_ops, store_speedup, store_gate,
              gate_enforced ? "enforced" : "recorded");

  // -- Report -------------------------------------------------------------
  std::vector<std::string> point_rows;
  for (const ShardPoint& point : points) {
    bench::JsonObject row;
    row.Set("shards", point.shards)
        .Set("threads", point.threads)
        .Set("ms", point.seconds * 1e3)
        .Set("speedup_vs_unsharded_1t", point.speedup)
        .Set("exact_fp32", point.exact_fp32)
        .Set("exact_int8", point.exact_int8);
    point_rows.push_back(row.Str());
  }
  bench::JsonObject scoring_row;
  scoring_row.Set("catalog", catalog)
      .Set("dim", kDim)
      .Set("rows", kRows)
      .Set("top_k", kTopK)
      .Set("unsharded_1t_ms", unsharded_seconds * 1e3)
      .SetRaw("points", bench::JsonArray(point_rows))
      .Set("best_speedup_8t", best_sharded_speedup)
      .Set("gate_min_speedup", scoring_gate);
  bench::JsonObject store_row;
  store_row.Set("threads", store_threads)
      .Set("resident_users", store_users)
      .Set("acquires_per_thread", store_iters)
      .Set("single_mutex_ops", single_ops)
      .Set("sharded_8_ops", sharded_ops)
      .Set("speedup", store_speedup)
      .Set("gate_min_speedup", store_gate);
  bench::JsonObject report;
  report.Set("bench", std::string("bench_sharding"))
      .Set("smoke", smoke)
      .Set("hardware_threads", hardware)
      .Set("gate_enforced", gate_enforced)
      .SetRaw("scoring", scoring_row.Str())
      .SetRaw("store", store_row.Str());
  if (!bench::WriteTextFile(out_path, report.Str())) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\nreport -> %s\n", out_path.c_str());

  if (!ok) {
    std::fprintf(stderr,
                 "FATAL: a sharded result was not bit-identical to the "
                 "unsharded kernel (see NO rows above)\n");
    return 1;
  }
  if (gate_enforced && best_sharded_speedup < scoring_gate) {
    std::fprintf(stderr,
                 "FATAL: sharded scoring speedup %.2fx below the %.1fx "
                 "gate\n",
                 best_sharded_speedup, scoring_gate);
    return 1;
  }
  if (gate_enforced && store_speedup < store_gate) {
    std::fprintf(stderr,
                 "FATAL: sharded store speedup %.2fx below the %.1fx gate\n",
                 store_speedup, store_gate);
    return 1;
  }
  return 0;
}
