// Empirical companion to Theorem 1 (identifiability): on data generated
// from a known causal graph, score-based discovery with the NOTEARS
// acyclicity constraint recovers the true Markov equivalence class as the
// sample size grows. Reported per sample size: structural Hamming
// distance, MEC-recovery rate, and runtime (averaged over random DAGs).
// Also sweeps graph size to document the scalability motivation for
// Causer's cluster-level (rather than item-level) graph.

#include <cstdio>

#include "bench_util.h"
#include "causal/ges.h"
#include "causal/markov_equivalence.h"
#include "causal/notears.h"
#include "causal/pc.h"

int main() {
  using causer::Table;
  using namespace causer;
  bench::PrintHeader(
      "Identifiability: NOTEARS recovery vs sample size / graph size",
      "paper Theorem 1 (MEC identifiability) + Section III scalability "
      "discussion");

  {
    Table t({"#Samples", "avg SHD", "MEC recovered", "avg seconds"});
    const int kTrials = 8;
    for (int n : {10, 30, 100, 300, 1000}) {
      double shd = 0.0;
      int mec = 0;
      Stopwatch sw;
      for (int trial = 0; trial < kTrials; ++trial) {
        Rng rng(1000 + trial);
        causal::Graph truth = causal::RandomDag(6, 0.35, rng);
        causal::Dense x = causal::SimulateLinearSem(truth, n, 1.0, 2.0, rng);
        auto result = causal::NotearsLinear(x);
        shd += causal::StructuralHammingDistance(result.graph, truth);
        mec += causal::SameMarkovEquivalenceClass(result.graph, truth);
      }
      t.AddRow({std::to_string(n), Table::Fmt(shd / kTrials, 2),
                std::to_string(mec) + "/" + std::to_string(kTrials),
                Table::Fmt(sw.ElapsedSeconds() / kTrials, 2)});
    }
    std::printf("%s", t.ToString().c_str());
    std::printf(
        "Shape check: SHD decreases and MEC recovery increases with sample\n"
        "size, the empirical face of Theorem 1's identifiability claim.\n\n");
  }

  {
    // Method comparison on identical data: the continuous score-based
    // approach the paper builds on (NOTEARS) vs the constraint-based (PC)
    // and greedy score-based (GES) families cited in its related work.
    Table t({"Method", "avg SHD", "MEC recovered", "avg seconds"});
    const int kTrials = 5;
    double shd_nt = 0, shd_pc = 0, shd_ges = 0;
    int mec_nt = 0, mec_ges = 0;
    double sec_nt = 0, sec_pc = 0, sec_ges = 0;
    int pc_cpdag_errors = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      Rng rng(3000 + trial);
      causal::Graph truth = causal::RandomDag(6, 0.35, rng);
      causal::Dense x = causal::SimulateLinearSem(truth, 800, 1.0, 2.0, rng);
      Stopwatch sw;
      auto nt = causal::NotearsLinear(x);
      sec_nt += sw.ElapsedSeconds();
      shd_nt += causal::StructuralHammingDistance(nt.graph, truth);
      mec_nt += causal::SameMarkovEquivalenceClass(nt.graph, truth);

      sw.Restart();
      auto pc = causal::PcAlgorithm(x);
      sec_pc += sw.ElapsedSeconds();
      // PC outputs a CPDAG; compare against the truth's CPDAG entrywise.
      auto expected = causal::Cpdag(truth);
      int mismatch = 0;
      for (int i = 0; i < truth.n(); ++i) {
        for (int j = i + 1; j < truth.n(); ++j) {
          bool adj_got = pc.cpdag.Adjacent(i, j);
          bool adj_want = expected.Adjacent(i, j);
          if (adj_got != adj_want ||
              pc.cpdag.HasDirected(i, j) != expected.HasDirected(i, j) ||
              pc.cpdag.HasDirected(j, i) != expected.HasDirected(j, i)) {
            ++mismatch;
          }
        }
      }
      shd_pc += mismatch;
      pc_cpdag_errors += mismatch == 0 ? 0 : 1;

      sw.Restart();
      auto ges = causal::GreedyEquivalenceSearch(x);
      sec_ges += sw.ElapsedSeconds();
      shd_ges += causal::StructuralHammingDistance(ges.graph, truth);
      mec_ges += causal::SameMarkovEquivalenceClass(ges.graph, truth);
    }
    t.AddRow({"NOTEARS", Table::Fmt(shd_nt / kTrials, 2),
              std::to_string(mec_nt) + "/" + std::to_string(kTrials),
              Table::Fmt(sec_nt / kTrials, 3)});
    t.AddRow({"PC (CPDAG diff)", Table::Fmt(shd_pc / kTrials, 2),
              std::to_string(kTrials - pc_cpdag_errors) + "/" +
                  std::to_string(kTrials),
              Table::Fmt(sec_pc / kTrials, 3)});
    t.AddRow({"GES (hill climb)", Table::Fmt(shd_ges / kTrials, 2),
              std::to_string(mec_ges) + "/" + std::to_string(kTrials),
              Table::Fmt(sec_ges / kTrials, 3)});
    std::printf("%s", t.ToString().c_str());
    std::printf(
        "All three discovery families recover most of the structure; the\n"
        "differentiable NOTEARS constraint is the one Causer can train\n"
        "jointly with the recommender (the paper's motivation).\n\n");
  }

  {
    Table t({"Graph size d", "avg SHD", "avg seconds"});
    for (int d : {5, 10, 20, 40}) {
      const int kTrials = 3;
      double shd = 0.0;
      Stopwatch sw;
      for (int trial = 0; trial < kTrials; ++trial) {
        Rng rng(2000 + trial);
        causal::Graph truth = causal::RandomDag(d, 2.0 / d, rng);
        causal::Dense x = causal::SimulateLinearSem(truth, 600, 1.0, 2.0, rng);
        auto result = causal::NotearsLinear(x);
        shd += causal::StructuralHammingDistance(result.graph, truth);
      }
      t.AddRow({std::to_string(d), Table::Fmt(shd / kTrials, 2),
                Table::Fmt(sw.ElapsedSeconds() / kTrials, 2)});
    }
    std::printf("%s", t.ToString().c_str());
    std::printf(
        "Shape check: runtime grows super-linearly with graph size, and\n"
        "recovery quality degrades at fixed sample size — both halves of\n"
        "the paper's motivation for a K-cluster graph instead of an\n"
        "item-level |V| x |V| graph (Section III-A).\n");
  }
  return 0;
}
