// Reproduces the Section III-C efficiency claims with google-benchmark:
//  (1) training throughput with W^c/Theta_a updated every epoch vs every
//      10 epochs (paper: ~22% faster training in slow-update mode);
//  (2) inference cost of Causer relative to SASRec (paper: ~1.16x).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace {

using namespace causer;

const data::Dataset& BenchData() {
  static data::Dataset d = [] {
    data::DatasetSpec spec = data::TinySpec();
    spec.num_users = 200;
    spec.num_items = 120;
    spec.num_clusters = 8;
    spec.min_len = 4;
    spec.max_len = 12;
    return data::MakeDataset(spec);
  }();
  return d;
}

const data::Split& BenchSplit() {
  static data::Split s = data::LeaveLastOut(BenchData());
  return s;
}

void BM_CauserTrainEpoch_UpdateEvery(benchmark::State& state) {
  auto cfg = core::DefaultCauserConfig(BenchData(), core::Backbone::kGru);
  cfg.w_update_every = static_cast<int>(state.range(0));
  cfg.graph_warmup_epochs = 0;
  core::CauserModel model(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.TrainEpoch(BenchSplit().train));
  }
  state.SetItemsProcessed(state.iterations() *
                          BenchSplit().train.size());
}
BENCHMARK(BM_CauserTrainEpoch_UpdateEvery)
    ->Arg(1)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond);

void BM_CauserTrainEpoch_FrozenGraph(benchmark::State& state) {
  // Section III-C "pre-train W and fix it": all graph/cluster work moves
  // to a one-off pretraining pass; per-epoch cost then approaches the
  // plain sequential model's.
  auto cfg = core::DefaultCauserConfig(BenchData(), core::Backbone::kGru);
  core::CauserModel model(cfg);
  model.PretrainAndFreezeGraph(BenchSplit().train, /*rounds=*/2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.TrainEpoch(BenchSplit().train));
  }
  state.SetItemsProcessed(state.iterations() * BenchSplit().train.size());
}
BENCHMARK(BM_CauserTrainEpoch_FrozenGraph)->Unit(benchmark::kMillisecond);

void BM_GruTrainEpoch(benchmark::State& state) {
  models::Gru4Rec model(bench::BaseConfig(BenchData()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.TrainEpoch(BenchSplit().train));
  }
}
BENCHMARK(BM_GruTrainEpoch)->Unit(benchmark::kMillisecond);

template <typename ModelT>
void InferenceLoop(benchmark::State& state, ModelT& model) {
  // Pre-train briefly so caches and weights are realistic.
  model.TrainEpoch(BenchSplit().train);
  size_t i = 0;
  for (auto _ : state) {
    const auto& inst = BenchSplit().test[i % BenchSplit().test.size()];
    benchmark::DoNotOptimize(model.ScoreAll(inst.user, inst.history));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Inference_SasRec(benchmark::State& state) {
  models::SasRec model(bench::BaseConfig(BenchData()));
  InferenceLoop(state, model);
}
BENCHMARK(BM_Inference_SasRec)->Unit(benchmark::kMicrosecond);

void BM_Inference_Causer(benchmark::State& state) {
  auto cfg = core::DefaultCauserConfig(BenchData(), core::Backbone::kGru);
  cfg.graph_warmup_epochs = 0;
  core::CauserModel model(cfg);
  InferenceLoop(state, model);
}
BENCHMARK(BM_Inference_Causer)->Unit(benchmark::kMicrosecond);

void BM_Inference_Gru4Rec(benchmark::State& state) {
  models::Gru4Rec model(bench::BaseConfig(BenchData()));
  InferenceLoop(state, model);
}
BENCHMARK(BM_Inference_Gru4Rec)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
