// Reproduces Table III: the hyper-parameter tuning ranges of the paper,
// alongside the default values this library ships with (tuned for the
// scaled synthetic datasets). Purely informational: this is the paper's
// configuration table, not a measurement.

#include <cstdio>

#include "bench_util.h"

int main() {
  using causer::Table;
  causer::bench::PrintHeader("Table III: hyper-parameter tuning ranges",
                             "paper Table III");

  causer::core::CauserConfig defaults;
  Table t({"Parameter", "Paper tuning range", "Library default"});
  t.AddRow({"Batch size", "{32, 64, 128, 256, 512, 1024}",
            "1 (per-example SGD)"});
  t.AddRow({"Learning rate", "{1e-1, 1e-2, 1e-3, 1e-4, 1e-5}",
            Table::Fmt(defaults.base.learning_rate, 3)});
  t.AddRow({"Embedding size", "{32, 64, 128, 256}",
            std::to_string(defaults.base.embedding_dim)});
  t.AddRow({"epsilon", "{0.1, 0.2, ..., 0.9}",
            Table::Fmt(defaults.epsilon, 2)});
  t.AddRow({"eta", "{1e-8, 1e-6, ..., 1e8}", Table::Fmt(defaults.eta, 2)});
  t.AddRow({"K", "{2..10, 20, 30, ..., 100}",
            std::to_string(defaults.num_clusters) + " (or generator truth)"});
  t.AddRow({"lambda", "{1e-8, 1e-6, ..., 1e8}",
            Table::Fmt(defaults.lambda, 4)});
  std::printf("%s", t.ToString().c_str());
  std::printf(
      "The sweep benches (fig4/fig5/fig6) exercise the K, epsilon and eta\n"
      "ranges; the remaining values are fixed library defaults.\n");
  return 0;
}
