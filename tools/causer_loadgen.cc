// causer_loadgen: open-loop load generator for the serving TCP front-end
// (`causer_cli serve --serve-port=...`, wire format in src/serve/protocol.h).
//
// Open-loop means request i is *due* at start + i/qps regardless of how
// fast the server answers, and latency is measured from that due time —
// a server that stalls accumulates the backlog in the reported tail
// instead of silently slowing the offered load (coordinated omission).
//
// Users and items are Zipf-distributed over configurably huge id spaces
// (millions of distinct users exercise session-store eviction; the skew
// exercises the cache-hit path), sampled in O(1) per draw via Hörmann's
// rejection-inversion, so no per-id state is kept.
//
// The generator is fault-tolerant the way a real client fleet is: a
// broken connection (reset, torn frame, server-injected fault) is
// reconnected and every response-less request is resent; kQueueFull
// responses are retried with per-request exponential backoff. Retries,
// reconnects and resends are reported so chaos runs can see the recovery
// machinery working.
//
// --check turns on the bit-exactness cross-check used by the chaos CI
// job: every request carries a bootstrap history derived purely from its
// user id and appends nothing, so the server's response is a pure
// function of (user, model_version). The first response seen for each
// such pair is recorded; every later response must match it byte for
// byte (ranked items and fp32 score bits), across session eviction,
// rebuilds and hot reloads. Requires --items=N for the catalog bound.
//
// Exit status is a gate for CI: nonzero when any protocol error occurred,
// when no request succeeded, when achieved OK-throughput fell below
// --min-qps, when a connection was left hanging (a response never
// arrived within --drain-wait-s after the last send), or when --check
// saw any cross-check mismatch.
//
//   causer_loadgen --port=P [--host=127.0.0.1] [--qps=5000]
//                  [--duration-s=5] [--connections=4] [--users=1000000]
//                  [--items=0] [--zipf=1.1] [--deadline-ms=0]
//                  [--high-pct=10] [--min-qps=0] [--drain-wait-s=5]
//                  [--seed=1] [--smoke] [--check]
//
// --items=N (> 0) appends one sampled item per request, exercising the
// incremental-advance path; item ids must fit the served model's catalog.
// With --check it bounds the bootstrap item ids instead (no appends).
// --smoke shrinks the defaults for a fast CI run (2s at 2000 qps).

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/flags.h"
#include "common/net.h"
#include "common/rng.h"
#include "serve/protocol.h"

namespace {

using namespace causer;
using Clock = std::chrono::steady_clock;

constexpr int kNumStatuses = 6;
/// Resend attempts per request beyond the first (queue-full backoff).
constexpr int kMaxRetries = 6;

/// Zipf(s) sampler over {0, ..., n-1} by Hörmann's rejection-inversion
/// (as in "Rejection-inversion to generate variates from monotone
/// discrete distributions", ACM TOMACS 6(3), 1996): O(1) expected time
/// per draw and O(1) memory, so the id space can be in the millions.
class ZipfSampler {
 public:
  ZipfSampler(long n, double s) : n_(n), s_(s) {
    h_n_ = H(n_ + 0.5);
    dist_ = h_n_ - H(0.5);
  }

  long Sample(Rng& rng) {
    if (n_ <= 1) return 0;
    for (;;) {
      const double u = h_n_ - rng.Uniform() * dist_;
      const double x = Hinv(u);
      long k = std::lround(x);
      if (k < 1) k = 1;
      if (k > n_) k = n_;
      // Accept k exactly when u falls inside its probability bar.
      if (u >= H(k + 0.5) - std::exp(-std::log(k) * s_)) return k - 1;
    }
  }

 private:
  // H is the integral of the (unnormalized) density x^-s, extended to
  // non-integers; its inverse drives the inversion step.
  double H(double x) const {
    return s_ == 1.0 ? std::log(x)
                     : (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
  }
  double Hinv(double x) const {
    return s_ == 1.0 ? std::exp(x)
                     : std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
  }

  long n_;
  double s_;
  double h_n_ = 0.0;
  double dist_ = 0.0;
};

/// Everything one connection accumulates; merged after the join.
struct ConnStats {
  long sent = 0;             // first sends (not resends)
  long send_failures = 0;    // requests given up on (connection dead)
  long protocol_errors = 0;  // undecodable response payloads
  long hung = 0;             // responses that never arrived
  long retries = 0;          // kQueueFull-triggered resends
  long reconnects = 0;       // successful re-dials after a break
  long resent = 0;           // frames resent (reconnect replay + retries)
  long by_status[kNumStatuses] = {0, 0, 0, 0, 0, 0};
  std::vector<double> latencies;  // seconds, from scheduled due time
};

/// A request on the wire awaiting its response (or a resend slot).
struct Pending {
  std::vector<uint8_t> bytes;  // encoded payload, resent verbatim
  Clock::time_point due;       // open-loop schedule slot (latency origin)
  Clock::time_point resend_at{};  // when set, resend instead of waiting
  int32_t user = 0;
  int retries = 0;
  bool resend_pending = false;
};

/// --check bookkeeping, shared across connections: the first kOk payload
/// seen for each (user, model_version) pair is canon; every later one
/// must match bit for bit.
struct CheckTable {
  std::mutex mu;
  std::unordered_map<uint64_t, std::vector<uint8_t>> canon;
  long checked = 0;
  long mismatches = 0;
};

/// items + fp32 score bits, the bit-exactness comparison unit.
std::vector<uint8_t> ResponseSignature(const serve::wire::ResponseFrame& r) {
  std::vector<uint8_t> sig;
  sig.reserve(r.items.size() * 8);
  for (size_t i = 0; i < r.items.size(); ++i) {
    net::PutU32(&sig, static_cast<uint32_t>(r.items[i]));
    net::PutF32(&sig, i < r.scores.size() ? r.scores[i] : 0.0f);
  }
  return sig;
}

/// The --check request body for a user: a short bootstrap derived purely
/// from the user id (so rebuilds after eviction or reload replay the
/// exact same history), no append.
void FillCheckBootstrap(int32_t user, long catalog,
                        serve::wire::RequestFrame* frame) {
  const uint32_t u = static_cast<uint32_t>(user);
  const int steps = 1 + static_cast<int>(u % 3);
  frame->bootstrap.resize(steps);
  for (int j = 0; j < steps; ++j) {
    const uint32_t item =
        ((u + 1u) * 2654435761u + static_cast<uint32_t>(j) * 40503u) %
        static_cast<uint32_t>(catalog);
    frame->bootstrap[j] = {static_cast<int32_t>(item)};
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: causer_loadgen --port=P [--host=A] [--qps=N] "
               "[--duration-s=S] [--connections=N] [--users=N] [--items=N] "
               "[--zipf=S] [--deadline-ms=N] [--high-pct=N] [--min-qps=N] "
               "[--drain-wait-s=S] [--seed=N] [--smoke] [--check]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  if (flags.GetBool("help", false)) return Usage();
  if (!flags.Has("port")) return Usage();

  const bool smoke = flags.GetBool("smoke", false);
  const bool check = flags.GetBool("check", false);
  const std::string host = flags.GetString("host", "127.0.0.1");
  const int port = flags.GetInt("port", 0);
  const double qps = flags.GetDouble("qps", smoke ? 2000.0 : 5000.0);
  const double duration_s =
      flags.GetDouble("duration-s", smoke ? 2.0 : 5.0);
  const int connections = std::max(1, flags.GetInt("connections", 4));
  const long users = std::max(1, flags.GetInt("users", 1000000));
  const long items = std::max(0, flags.GetInt("items", 0));
  const double zipf_s = flags.GetDouble("zipf", 1.1);
  const uint32_t deadline_ms =
      static_cast<uint32_t>(std::max(0, flags.GetInt("deadline-ms", 0)));
  const int high_pct =
      std::min(100, std::max(0, flags.GetInt("high-pct", 10)));
  const double min_qps = flags.GetDouble("min-qps", 0.0);
  const double drain_wait_s =
      std::max(0.5, flags.GetDouble("drain-wait-s", 5.0));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const long total =
      std::max<long>(1, std::lround(qps * std::max(0.1, duration_s)));
  if (check && items <= 0) {
    std::fprintf(stderr, "--check needs --items=N for the catalog bound\n");
    return 2;
  }

  std::vector<int> fds(connections, -1);
  for (int c = 0; c < connections; ++c) {
    fds[c] = net::ConnectTcp(host, port);
    if (fds[c] < 0) {
      std::fprintf(stderr, "connect %s:%d failed (connection %d)\n",
                   host.c_str(), port, c);
      for (int fd : fds) net::CloseSocket(fd);
      return 1;
    }
    net::SetRecvTimeout(fds[c], drain_wait_s);
  }

  std::printf(
      "offering %ld requests at %.0f qps over %d connection(s): "
      "%ld users / %ld items (zipf %.2f), %d%% high priority, "
      "deadline %u ms%s\n",
      total, qps, connections, users, items, zipf_s, high_pct, deadline_ms,
      check ? ", bit-exactness check on" : "");
  std::fflush(stdout);

  const Clock::time_point start = Clock::now() + std::chrono::milliseconds(20);
  const auto due = [&](long i) {
    return start + std::chrono::nanoseconds(
                       static_cast<long long>(i * 1e9 / qps));
  };

  CheckTable check_table;
  std::vector<ConnStats> stats(connections);
  std::vector<std::thread> workers;
  workers.reserve(connections);

  // One worker per connection, pipelining sends at their due times while
  // draining whatever responses poll() says are ready — so a single
  // thread owns its fd end to end and reconnect/resend needs no
  // cross-thread coordination.
  for (int c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      ConnStats& s = stats[c];
      int fd = fds[c];
      bool dead = false;
      Rng rng(seed * 7919 + static_cast<uint64_t>(c));
      ZipfSampler user_zipf(users, zipf_s);
      ZipfSampler item_zipf(std::max<long>(1, items), zipf_s);
      std::unordered_map<uint32_t, Pending> outstanding;
      std::vector<uint8_t> payload;

      // Re-dial after a break and replay every response-less request.
      // False (and `dead`) only when the server is truly unreachable.
      auto recover = [&]() -> bool {
        for (int round = 0; round < 5 && !dead; ++round) {
          net::CloseSocket(fd);
          fd = -1;
          for (int attempt = 0; attempt < 10 && fd < 0; ++attempt) {
            fd = net::ConnectTcp(host, port);
            if (fd < 0) {
              std::this_thread::sleep_for(
                  std::chrono::milliseconds(2 * (attempt + 1)));
            }
          }
          if (fd < 0) break;
          net::SetRecvTimeout(fd, drain_wait_s);
          ++s.reconnects;
          bool replayed = true;
          for (auto& [id, p] : outstanding) {
            if (!net::WriteFrame(fd, p.bytes.data(), p.bytes.size())) {
              replayed = false;  // broke again mid-replay; next round
              break;
            }
            ++s.resent;
            p.resend_pending = false;
          }
          if (replayed) return true;
        }
        dead = true;
        return false;
      };

      auto handle_response = [&]() {
        serve::wire::ResponseFrame response;
        if (!serve::wire::DecodeResponse(payload, &response)) {
          ++s.protocol_errors;
          return;
        }
        auto it = outstanding.find(response.request_id);
        if (it == outstanding.end()) return;  // duplicate after a replay
        Pending& p = it->second;
        if (response.status == serve::wire::Status::kQueueFull &&
            p.retries < kMaxRetries) {
          // Back off per request: 1, 2, 4, ... ms, decorrelated by the
          // open-loop schedule itself (requests back off from when their
          // rejection arrives, not in lockstep).
          ++p.retries;
          ++s.retries;
          p.resend_at = Clock::now() +
                        std::chrono::milliseconds(1 << (p.retries - 1));
          p.resend_pending = true;
          return;
        }
        const int status = static_cast<int>(response.status);
        if (status >= 0 && status < kNumStatuses) ++s.by_status[status];
        if (response.status == serve::wire::Status::kOk) {
          s.latencies.push_back(
              std::chrono::duration<double>(Clock::now() - p.due).count());
          if (check) {
            const uint64_t key =
                (static_cast<uint64_t>(static_cast<uint32_t>(p.user)) << 32) |
                response.model_version;
            const std::vector<uint8_t> sig = ResponseSignature(response);
            std::lock_guard<std::mutex> lock(check_table.mu);
            ++check_table.checked;
            auto canon_it = check_table.canon.find(key);
            if (canon_it == check_table.canon.end()) {
              check_table.canon.emplace(key, sig);
            } else if (canon_it->second != sig) {
              ++check_table.mismatches;
              std::fprintf(stderr,
                           "CHECK MISMATCH user %d model_version %u\n",
                           p.user, response.model_version);
            }
          }
        }
        outstanding.erase(it);
      };

      // Fire any due queue-full resends; returns the earliest pending
      // resend time (or `fallback` when none are pending).
      auto flush_resends = [&](Clock::time_point fallback) -> Clock::time_point {
        Clock::time_point next = fallback;
        const Clock::time_point now = Clock::now();
        for (auto& [id, p] : outstanding) {
          if (!p.resend_pending) continue;
          if (p.resend_at <= now) {
            if (!net::WriteFrame(fd, p.bytes.data(), p.bytes.size())) {
              if (!recover()) return fallback;
              break;  // recover() replayed everything, flags cleared
            }
            ++s.resent;
            p.resend_pending = false;
          } else if (p.resend_at < next) {
            next = p.resend_at;
          }
        }
        return next;
      };

      // Drain responses (and fire resends) until `until`.
      auto drain_until = [&](Clock::time_point until) {
        while (!dead) {
          const Clock::time_point wake = flush_resends(until);
          const Clock::time_point now = Clock::now();
          if (now >= until) return;
          const auto wait = std::min(wake, until) - now;
          const int timeout_ms = std::max(
              1, static_cast<int>(
                     std::chrono::duration_cast<std::chrono::milliseconds>(
                         wait)
                         .count()) +
                     1);
          struct pollfd pfd = {fd, POLLIN, 0};
          const int ready = poll(&pfd, 1, timeout_ms);
          if (ready <= 0) continue;  // timeout/EINTR: re-check the clock
          if (!net::ReadFrame(fd, &payload, serve::wire::kMaxFrameBytes)) {
            if (!recover()) return;
            continue;
          }
          handle_response();
        }
      };

      // Connection c owns request indices i ≡ c (mod connections); the
      // request_id encodes i so due times survive out-of-order replies.
      for (long i = c; i < total; i += connections) {
        if (!dead) drain_until(due(i));
        if (dead) {
          ++s.send_failures;  // never reached a live wire
          continue;
        }
        serve::wire::RequestFrame frame;
        frame.request_id = static_cast<uint32_t>(i);
        frame.user = static_cast<int32_t>(user_zipf.Sample(rng));
        frame.deadline_ms = deadline_ms;
        frame.priority = (i % 100) < high_pct
                             ? serve::wire::Priority::kHigh
                             : serve::wire::Priority::kNormal;
        if (check) {
          FillCheckBootstrap(frame.user, items, &frame);
        } else if (items > 0) {
          frame.append.push_back(
              static_cast<int32_t>(item_zipf.Sample(rng)));
        }
        Pending pending;
        pending.due = due(i);
        pending.user = frame.user;
        serve::wire::EncodeRequest(frame, &pending.bytes);
        auto [it, inserted] =
            outstanding.emplace(frame.request_id, std::move(pending));
        ++s.sent;
        if (!net::WriteFrame(fd, it->second.bytes.data(),
                             it->second.bytes.size())) {
          recover();  // replays the whole window, this frame included
        }
      }

      // Drain: everything still response-less after the grace window
      // counts as hung (the CI gate for stuck connections).
      const Clock::time_point drain_deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(drain_wait_s));
      while (!dead && !outstanding.empty() &&
             Clock::now() < drain_deadline) {
        drain_until(std::min(drain_deadline,
                             Clock::now() + std::chrono::milliseconds(50)));
      }
      s.hung = static_cast<long>(outstanding.size());
      net::CloseSocket(fd);
      fds[c] = -1;
    });
  }
  for (auto& t : workers) t.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (int fd : fds) net::CloseSocket(fd);

  ConnStats all;
  for (int c = 0; c < connections; ++c) {
    const ConnStats& s = stats[c];
    all.sent += s.sent;
    all.send_failures += s.send_failures;
    all.protocol_errors += s.protocol_errors;
    all.hung += s.hung;
    all.retries += s.retries;
    all.reconnects += s.reconnects;
    all.resent += s.resent;
    for (int k = 0; k < kNumStatuses; ++k) all.by_status[k] += s.by_status[k];
    all.latencies.insert(all.latencies.end(), s.latencies.begin(),
                         s.latencies.end());
  }
  std::sort(all.latencies.begin(), all.latencies.end());
  const auto pct = [&](double q) {
    if (all.latencies.empty()) return 0.0;
    const size_t idx =
        static_cast<size_t>(q * (all.latencies.size() - 1));
    return all.latencies[idx] * 1e3;  // ms
  };
  const long ok = all.by_status[0];
  const double achieved = wall > 0 ? ok / wall : 0.0;

  long answered = 0;
  for (int k = 0; k < kNumStatuses; ++k) answered += all.by_status[k];
  std::printf("sent %ld (%ld send failures), responses %ld: ", all.sent,
              all.send_failures, answered);
  for (int k = 0; k < kNumStatuses; ++k) {
    std::printf("%s%s %ld", k > 0 ? "  " : "",
                serve::wire::StatusName(static_cast<serve::wire::Status>(k)),
                all.by_status[k]);
  }
  std::printf("\nprotocol errors %ld, hung %ld\n", all.protocol_errors,
              all.hung);
  std::printf("retries %ld, reconnects %ld, resent %ld\n", all.retries,
              all.reconnects, all.resent);
  if (check) {
    std::printf("check: %ld ok responses against %zu (user, version) keys, "
                "%ld mismatches\n",
                check_table.checked, check_table.canon.size(),
                check_table.mismatches);
  }
  std::printf("latency p50 %.3f ms  p99 %.3f ms  p99.9 %.3f ms\n",
              pct(0.50), pct(0.99), pct(0.999));
  std::printf("achieved %.0f ok-req/s over %.2f s (offered %.0f qps)\n",
              achieved, wall, qps);

  int failures = 0;
  if (all.protocol_errors > 0) {
    std::fprintf(stderr, "FAIL: %ld protocol errors\n", all.protocol_errors);
    ++failures;
  }
  if (ok == 0) {
    std::fprintf(stderr, "FAIL: no request succeeded\n");
    ++failures;
  }
  if (all.hung > 0) {
    std::fprintf(stderr, "FAIL: %ld responses never arrived\n", all.hung);
    ++failures;
  }
  if (min_qps > 0 && achieved < min_qps) {
    std::fprintf(stderr, "FAIL: achieved %.0f qps < --min-qps=%.0f\n",
                 achieved, min_qps);
    ++failures;
  }
  if (check && check_table.mismatches > 0) {
    std::fprintf(stderr,
                 "FAIL: %ld bit-exactness mismatches across reloads\n",
                 check_table.mismatches);
    ++failures;
  }
  return failures > 0 ? 1 : 0;
}
