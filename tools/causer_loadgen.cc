// causer_loadgen: open-loop load generator for the serving TCP front-end
// (`causer_cli serve --serve-port=...`, wire format in src/serve/protocol.h).
//
// Open-loop means request i is *due* at start + i/qps regardless of how
// fast the server answers, and latency is measured from that due time —
// a server that stalls accumulates the backlog in the reported tail
// instead of silently slowing the offered load (coordinated omission).
//
// Users and items are Zipf-distributed over configurably huge id spaces
// (millions of distinct users exercise session-store eviction; the skew
// exercises the cache-hit path), sampled in O(1) per draw via Hörmann's
// rejection-inversion, so no per-id state is kept.
//
// Exit status is a gate for CI: nonzero when any protocol error occurred,
// when no request succeeded, when achieved OK-throughput fell below
// --min-qps, or when a connection was left hanging (a response never
// arrived within --drain-wait-s after the last send).
//
//   causer_loadgen --port=P [--host=127.0.0.1] [--qps=5000]
//                  [--duration-s=5] [--connections=4] [--users=1000000]
//                  [--items=0] [--zipf=1.1] [--deadline-ms=0]
//                  [--high-pct=10] [--min-qps=0] [--drain-wait-s=5]
//                  [--seed=1] [--smoke]
//
// --items=N (> 0) appends one sampled item per request, exercising the
// incremental-advance path; item ids must fit the served model's catalog.
// --smoke shrinks the defaults for a fast CI run (2s at 2000 qps).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/net.h"
#include "common/rng.h"
#include "serve/protocol.h"

namespace {

using namespace causer;
using Clock = std::chrono::steady_clock;

/// Zipf(s) sampler over {0, ..., n-1} by Hörmann's rejection-inversion
/// (as in "Rejection-inversion to generate variates from monotone
/// discrete distributions", ACM TOMACS 6(3), 1996): O(1) expected time
/// per draw and O(1) memory, so the id space can be in the millions.
class ZipfSampler {
 public:
  ZipfSampler(long n, double s) : n_(n), s_(s) {
    h_n_ = H(n_ + 0.5);
    dist_ = h_n_ - H(0.5);
  }

  long Sample(Rng& rng) {
    if (n_ <= 1) return 0;
    for (;;) {
      const double u = h_n_ - rng.Uniform() * dist_;
      const double x = Hinv(u);
      long k = std::lround(x);
      if (k < 1) k = 1;
      if (k > n_) k = n_;
      // Accept k exactly when u falls inside its probability bar.
      if (u >= H(k + 0.5) - std::exp(-std::log(k) * s_)) return k - 1;
    }
  }

 private:
  // H is the integral of the (unnormalized) density x^-s, extended to
  // non-integers; its inverse drives the inversion step.
  double H(double x) const {
    return s_ == 1.0 ? std::log(x)
                     : (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
  }
  double Hinv(double x) const {
    return s_ == 1.0 ? std::exp(x)
                     : std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
  }

  long n_;
  double s_;
  double h_n_ = 0.0;
  double dist_ = 0.0;
};

/// Everything one connection accumulates; merged after the join.
struct ConnStats {
  long sent = 0;
  long send_failures = 0;
  long protocol_errors = 0;  // undecodable response payloads
  long hung = 0;             // responses that never arrived
  long by_status[5] = {0, 0, 0, 0, 0};
  std::vector<double> latencies;  // seconds, from scheduled due time
};

int Usage() {
  std::fprintf(stderr,
               "usage: causer_loadgen --port=P [--host=A] [--qps=N] "
               "[--duration-s=S] [--connections=N] [--users=N] [--items=N] "
               "[--zipf=S] [--deadline-ms=N] [--high-pct=N] [--min-qps=N] "
               "[--drain-wait-s=S] [--seed=N] [--smoke]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  if (flags.GetBool("help", false)) return Usage();
  if (!flags.Has("port")) return Usage();

  const bool smoke = flags.GetBool("smoke", false);
  const std::string host = flags.GetString("host", "127.0.0.1");
  const int port = flags.GetInt("port", 0);
  const double qps = flags.GetDouble("qps", smoke ? 2000.0 : 5000.0);
  const double duration_s =
      flags.GetDouble("duration-s", smoke ? 2.0 : 5.0);
  const int connections = std::max(1, flags.GetInt("connections", 4));
  const long users = std::max(1, flags.GetInt("users", 1000000));
  const long items = std::max(0, flags.GetInt("items", 0));
  const double zipf_s = flags.GetDouble("zipf", 1.1);
  const uint32_t deadline_ms =
      static_cast<uint32_t>(std::max(0, flags.GetInt("deadline-ms", 0)));
  const int high_pct =
      std::min(100, std::max(0, flags.GetInt("high-pct", 10)));
  const double min_qps = flags.GetDouble("min-qps", 0.0);
  const double drain_wait_s =
      std::max(0.5, flags.GetDouble("drain-wait-s", 5.0));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const long total =
      std::max<long>(1, std::lround(qps * std::max(0.1, duration_s)));

  std::vector<int> fds(connections, -1);
  for (int c = 0; c < connections; ++c) {
    fds[c] = net::ConnectTcp(host, port);
    if (fds[c] < 0) {
      std::fprintf(stderr, "connect %s:%d failed (connection %d)\n",
                   host.c_str(), port, c);
      for (int fd : fds) net::CloseSocket(fd);
      return 1;
    }
    net::SetRecvTimeout(fds[c], drain_wait_s);
  }

  std::printf(
      "offering %ld requests at %.0f qps over %d connection(s): "
      "%ld users / %ld items (zipf %.2f), %d%% high priority, "
      "deadline %u ms\n",
      total, qps, connections, users, items, zipf_s, high_pct, deadline_ms);
  std::fflush(stdout);

  const Clock::time_point start = Clock::now() + std::chrono::milliseconds(20);
  const auto due = [&](long i) {
    return start + std::chrono::nanoseconds(
                       static_cast<long long>(i * 1e9 / qps));
  };

  std::vector<ConnStats> stats(connections);
  std::vector<std::thread> senders, receivers;
  // sent[c] counts frames connection c put on the wire; the receiver for c
  // drains until it has one response per sent frame (or times out).
  std::vector<std::atomic<long>> sent_on(connections);
  std::vector<std::atomic<bool>> sender_done(connections);
  for (int c = 0; c < connections; ++c) {
    sent_on[c].store(0);
    sender_done[c].store(false);
  }

  for (int c = 0; c < connections; ++c) {
    senders.emplace_back([&, c] {
      Rng rng(seed * 7919 + static_cast<uint64_t>(c));
      ZipfSampler user_zipf(users, zipf_s);
      ZipfSampler item_zipf(std::max<long>(1, items), zipf_s);
      std::vector<uint8_t> payload;
      // Connection c owns request indices i ≡ c (mod connections); the
      // request_id encodes i so the receiver can recover the due time.
      for (long i = c; i < total; i += connections) {
        std::this_thread::sleep_until(due(i));
        serve::wire::RequestFrame frame;
        frame.request_id = static_cast<uint32_t>(i);
        frame.user = static_cast<int32_t>(user_zipf.Sample(rng));
        frame.deadline_ms = deadline_ms;
        frame.priority = (i % 100) < high_pct
                             ? serve::wire::Priority::kHigh
                             : serve::wire::Priority::kNormal;
        if (items > 0) {
          frame.append.push_back(
              static_cast<int32_t>(item_zipf.Sample(rng)));
        }
        serve::wire::EncodeRequest(frame, &payload);
        if (!net::WriteFrame(fds[c], payload.data(), payload.size())) {
          ++stats[c].send_failures;
          break;
        }
        sent_on[c].fetch_add(1, std::memory_order_release);
      }
      sender_done[c].store(true, std::memory_order_release);
    });
    receivers.emplace_back([&, c] {
      ConnStats& s = stats[c];
      std::vector<uint8_t> payload;
      long received = 0;
      for (;;) {
        const long target = sent_on[c].load(std::memory_order_acquire);
        if (received >= target &&
            sender_done[c].load(std::memory_order_acquire)) {
          break;
        }
        if (!net::ReadFrame(fds[c], &payload, serve::wire::kMaxFrameBytes)) {
          const long owed = sent_on[c].load(std::memory_order_acquire);
          if (received >= owed &&
              !sender_done[c].load(std::memory_order_acquire)) {
            // SO_RCVTIMEO fired while nothing was owed (slow offered
            // rate); keep waiting for the sender.
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            continue;
          }
          // Timeout with responses outstanding, EOF or error: everything
          // still owed on this connection counts as hung.
          s.hung = owed - received;
          break;
        }
        serve::wire::ResponseFrame response;
        ++received;
        if (!serve::wire::DecodeResponse(payload, &response)) {
          ++s.protocol_errors;
          continue;
        }
        const int status = static_cast<int>(response.status);
        if (status >= 0 && status < 5) ++s.by_status[status];
        const double latency =
            std::chrono::duration<double>(Clock::now() -
                                          due(response.request_id))
                .count();
        s.latencies.push_back(latency);
      }
    });
  }
  for (auto& t : senders) t.join();
  for (auto& t : receivers) t.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - start).count();
  for (int fd : fds) net::CloseSocket(fd);

  ConnStats all;
  for (int c = 0; c < connections; ++c) {
    const ConnStats& s = stats[c];
    all.sent += sent_on[c].load();
    all.send_failures += s.send_failures;
    all.protocol_errors += s.protocol_errors;
    all.hung += s.hung;
    for (int k = 0; k < 5; ++k) all.by_status[k] += s.by_status[k];
    all.latencies.insert(all.latencies.end(), s.latencies.begin(),
                         s.latencies.end());
  }
  std::sort(all.latencies.begin(), all.latencies.end());
  const auto pct = [&](double q) {
    if (all.latencies.empty()) return 0.0;
    const size_t idx =
        static_cast<size_t>(q * (all.latencies.size() - 1));
    return all.latencies[idx] * 1e3;  // ms
  };
  const long ok = all.by_status[0];
  const double achieved = wall > 0 ? ok / wall : 0.0;

  std::printf("sent %ld (%ld send failures), responses %zu: ", all.sent,
              all.send_failures, all.latencies.size());
  for (int k = 0; k < 5; ++k) {
    std::printf("%s%s %ld", k > 0 ? "  " : "",
                serve::wire::StatusName(static_cast<serve::wire::Status>(k)),
                all.by_status[k]);
  }
  std::printf("\nprotocol errors %ld, hung %ld\n", all.protocol_errors,
              all.hung);
  std::printf("latency p50 %.3f ms  p99 %.3f ms  p99.9 %.3f ms\n",
              pct(0.50), pct(0.99), pct(0.999));
  std::printf("achieved %.0f ok-req/s over %.2f s (offered %.0f qps)\n",
              achieved, wall, qps);

  int failures = 0;
  if (all.protocol_errors > 0) {
    std::fprintf(stderr, "FAIL: %ld protocol errors\n", all.protocol_errors);
    ++failures;
  }
  if (ok == 0) {
    std::fprintf(stderr, "FAIL: no request succeeded\n");
    ++failures;
  }
  if (all.hung > 0) {
    std::fprintf(stderr, "FAIL: %ld responses never arrived\n", all.hung);
    ++failures;
  }
  if (min_qps > 0 && achieved < min_qps) {
    std::fprintf(stderr, "FAIL: achieved %.0f qps < --min-qps=%.0f\n",
                 achieved, min_qps);
    ++failures;
  }
  return failures > 0 ? 1 : 0;
}
