#!/usr/bin/env bash
# Documentation consistency checks, run by the CI "docs" job.
#
#   1. Every relative link in the repo's markdown files resolves to a file
#      (or directory) that exists.
#   2. Every document under docs/ is linked from the README documentation
#      index, so new docs cannot silently miss discovery.
#   3. The flag tokens printed by `causer_cli --help` exactly match the
#      README flag table between the causer-cli-flags markers. The help
#      text (PrintHelp in tools/causer_cli.cc) is the source of truth.
#   4. The ISA variants registered in the compute-primitive layer (one
#      src/tensor/primitives/primitives_<isa>.cc translation unit each)
#      exactly match the tier rows of the docs/KERNELS.md ISA table
#      between the kernels-isa-table markers. The source tree is the
#      source of truth: adding or dropping a variant must update the docs.
#
# Usage: tools/check_docs.sh [path/to/causer_cli]
#   Default binary location: build/tools/causer_cli
set -u
cd "$(dirname "$0")/.."

cli=${1:-build/tools/causer_cli}
errors=0

# --- 1. Intra-repo markdown links --------------------------------------
# Scaffolding files (paper/issue snapshots) are excluded: they quote
# external material and are not part of the maintained doc set.
doc_files=$(git ls-files '*.md' ':!ISSUE.md' ':!PAPER.md' ':!PAPERS.md' ':!SNIPPETS.md')

check_links() {
  local file=$1 dir target path
  dir=$(dirname "$file")
  while IFS= read -r target; do
    case "$target" in
      http://* | https://* | mailto:* | chrome://* | '#'* | '') continue ;;
    esac
    path=${target%%#*}
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "broken link in $file: $target" >&2
      errors=$((errors + 1))
    fi
  done < <(grep -oE '\]\([^)]+\)' "$file" | sed -E 's/^\]\(//; s/\)$//')
}

for f in $doc_files; do
  check_links "$f"
done

# --- 2. every docs/*.md is reachable from the README -------------------
for doc in $(git ls-files 'docs/*.md'); do
  if ! grep -qF "($doc)" README.md; then
    echo "docs file not linked from README.md: $doc" >&2
    errors=$((errors + 1))
  fi
done

# --- 3. causer_cli --help vs README flag table -------------------------
if [ ! -x "$cli" ]; then
  echo "causer_cli binary not found at '$cli' (build it, or pass its path)" >&2
  exit 1
fi

help_flags=$("$cli" --help | grep -oE -- '--[a-z][a-z-]*' | sort -u)
readme_flags=$(sed -n '/causer-cli-flags-begin/,/causer-cli-flags-end/p' README.md |
  grep -oE -- '`--[a-z][a-z-]*' | tr -d '`' | sort -u)

if [ -z "$readme_flags" ]; then
  echo "README.md flag table markers (causer-cli-flags-begin/end) not found" >&2
  errors=$((errors + 1))
elif ! diff <(printf '%s\n' "$help_flags") <(printf '%s\n' "$readme_flags") >/dev/null; then
  echo "causer_cli --help flags drifted from the README flag table:" >&2
  echo "(< only in --help, > only in README)" >&2
  diff <(printf '%s\n' "$help_flags") <(printf '%s\n' "$readme_flags") >&2
  errors=$((errors + 1))
fi

# --- 4. primitives variants vs docs/KERNELS.md ISA table ---------------
registered_isas=$(git ls-files 'src/tensor/primitives/primitives_*.cc' |
  sed -E 's|.*/primitives_([a-z0-9]+)\.cc|\1|' | sort -u)
doc_isas=$(sed -n '/kernels-isa-table-begin/,/kernels-isa-table-end/p' docs/KERNELS.md |
  grep -oE '^\| *`[a-z0-9]+`' | tr -d '|` ' | sort -u)

if [ -z "$doc_isas" ]; then
  echo "docs/KERNELS.md ISA table markers (kernels-isa-table-begin/end) not found" >&2
  errors=$((errors + 1))
elif ! diff <(printf '%s\n' "$registered_isas") <(printf '%s\n' "$doc_isas") >/dev/null; then
  echo "primitives variants drifted from the docs/KERNELS.md ISA table:" >&2
  echo "(< registered in src/tensor/primitives/, > documented)" >&2
  diff <(printf '%s\n' "$registered_isas") <(printf '%s\n' "$doc_isas") >&2
  errors=$((errors + 1))
fi

if [ "$errors" -ne 0 ]; then
  echo "check_docs: $errors problem(s) found" >&2
  exit 1
fi
echo "check_docs: OK (links resolve; docs/ indexed; --help matches README flag table; ISA table matches registered variants)"
