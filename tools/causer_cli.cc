// causer_cli: command-line front end to the library.
//
// Subcommands:
//   generate  --spec=<tiny|epinions|foursquare|patio|baby|video>
//             --out=<dir> [--seed=N]
//     Generates a synthetic causal dataset and saves it as TSV.
//
//   train     --data=<dir> --model-out=<file>
//             [--backbone=gru|lstm] [--epochs=N] [--clusters=K]
//             [--epsilon=X] [--eta=X] [--lambda=X] [--seed=N]
//     Trains Causer on a saved dataset and writes the weights.
//
//   evaluate  --data=<dir> --model=<file> [--backbone=...] [--clusters=K]
//             [--epsilon=X] [--eta=X] [--z=5]
//     Evaluates a trained model on the leave-last-out test split.
//
//   explain   --data=<dir> --model=<file> --user=U [--top=3] [...]
//     Prints the user's recommendation with per-step causal explanation.
//
//   serve     --data=<dir> --model=<file> [--serve-replay=N]
//             [--batch-max=N] [--batch-wait-us=N] [--max-sessions=N]
//             [--serve-port=N] [--deadline-ms=N] [--queue-depth=N]
//             [--quantize=MODE] [--rerank-k=N] [--reload-watch=DIR]
//             [--reload-poll-ms=N] [--conn-idle-timeout-ms=N]
//             [--score-shards=N] [--session-shards=N]
//     Without --serve-port: replays the test split's requests through the
//     online serving engine (incremental session states + micro-batched
//     GEMM scoring) from --threads concurrent clients and reports p50/p99
//     latency and QPS. With --serve-port (0 = ephemeral): binds the TCP
//     front-end (src/serve/server.h, wire format in src/serve/protocol.h)
//     and serves until SIGINT/SIGTERM, then drains gracefully. SIGHUP (or
//     a kReload control frame) hot-reloads the model with zero downtime —
//     from the newest checkpoint in --reload-watch when set, else by
//     re-reading --model; --reload-watch is also polled so new
//     checkpoints are picked up without a signal.
//
// Model files carry only weights; the architecture flags at evaluate /
// explain time must match those used at training time.
//
// All subcommands accept --threads=N (default 1, or the CAUSER_THREADS
// environment variable) to parallelize evaluation and large matmuls, plus
// the observability flags --metrics-out / --trace-out / --metrics-interval
// (instrumentation stays compiled out of the hot path until one of them
// turns it on). Run `causer_cli --help` for the full flag reference.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cpu.h"
#include "common/fault.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "common/net.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/checkpoint.h"
#include "core/explainer.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/io.h"
#include "data/split.h"
#include "data/stats.h"
#include "common/stopwatch.h"
#include "eval/metrics.h"
#include "nn/serialization.h"
#include "serve/engine.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "tensor/arena.h"

namespace {

using namespace causer;

int Usage() {
  std::fprintf(stderr,
               "usage: causer_cli <generate|train|evaluate|explain|serve> "
               "[--flags]\n(run causer_cli --help for the flag reference)\n");
  return 2;
}

// The flag table below is the source of truth for the README's CLI
// reference: tools/check_docs.sh diffs the `--name` tokens printed here
// against the table between the causer-cli-flags markers in README.md.
int PrintHelp() {
  std::printf(
      "usage: causer_cli <generate|train|evaluate|explain|serve> "
      "[flags...]\n"
      "\n"
      "subcommands:\n"
      "  generate   Generate a synthetic causal dataset and save it as TSV.\n"
      "  train      Train Causer on a saved dataset and write the weights.\n"
      "  evaluate   Evaluate a trained model on the leave-last-out split.\n"
      "  explain    Print a recommendation with per-step causal "
      "explanation.\n"
      "  serve      Replay test-split requests through the online serving "
      "engine and report latency/QPS.\n"
      "\n"
      "generate flags:\n"
      "  --spec=NAME          Dataset spec: tiny, epinions, foursquare, "
      "patio, baby, video (default tiny).\n"
      "  --out=DIR            Output directory for the TSV dataset "
      "(required).\n"
      "\n"
      "train flags:\n"
      "  --data=DIR           Dataset directory (required).\n"
      "  --model-out=FILE     Where to write the trained weights "
      "(required).\n"
      "  --epochs=N           Max training epochs (default 12).\n"
      "  --patience=N         Early-stopping patience in epochs (default "
      "3).\n"
      "  --verbose=BOOL       Log per-epoch loss and validation NDCG.\n"
      "  --checkpoint-dir=DIR Write atomic training checkpoints here and "
      "enable crash recovery (docs/ROBUSTNESS.md).\n"
      "  --checkpoint-every=N Epochs between checkpoints (default 1).\n"
      "  --resume=BOOL        Resume from the newest loadable checkpoint "
      "in --checkpoint-dir before the first epoch.\n"
      "\n"
      "evaluate / explain flags:\n"
      "  --model=FILE         Trained weights to load (required).\n"
      "  --z=N                Ranking cutoff for F1@z / NDCG@z (default "
      "5).\n"
      "  --user=U             explain: user whose test instance to explain "
      "(default 0).\n"
      "  --top=N              explain: number of recommendations to "
      "explain (default 3); serve: recommendations per response (default "
      "10).\n"
      "\n"
      "serve flags (plus --data / --model / --top above):\n"
      "  --serve-replay=N     Replay passes over the test split's requests "
      "(default 1).\n"
      "  --batch-max=N        Micro-batcher: most requests coalesced into "
      "one scoring batch (default 32).\n"
      "  --batch-wait-us=N    Micro-batcher: how long a batch waits to "
      "fill after its first request, in microseconds (default 200).\n"
      "  --max-sessions=N     Session-store LRU capacity (default 0 = "
      "unbounded).\n"
      "  --serve-port=N       Bind the TCP front-end on this port instead "
      "of replaying (0 = ephemeral; serves until SIGINT/SIGTERM, then "
      "drains gracefully).\n"
      "  --deadline-ms=N      Default per-request deadline applied when a "
      "frame carries none; expired requests are rejected before scoring "
      "(default 0 = no deadline).\n"
      "  --queue-depth=N      Admission cap across both priority lanes; "
      "arrivals beyond it are rejected with QUEUE_FULL (default 256).\n"
      "  --quantize=MODE      Catalog scoring precision: none (fp32, the "
      "default) or int8 (per-row-quantized item table + exact fp32 re-rank "
      "of the top candidates; see docs/KERNELS.md).\n"
      "  --rerank-k=N         With --quantize=int8: candidates per request "
      "re-scored exactly in fp32 before the final top-k (default 2048; >= "
      "the catalog size makes int8 results identical to fp32).\n"
      "  --reload-watch=DIR   Hot-reload source: on SIGHUP / kReload, load "
      "the newest training checkpoint in DIR (default: re-read --model); "
      "the directory is also polled so new checkpoints are picked up "
      "without a signal. Zero downtime: in-flight requests finish on the "
      "version that admitted them.\n"
      "  --reload-poll-ms=N   How often to poll --reload-watch for new "
      "checkpoints (default 500).\n"
      "  --conn-idle-timeout-ms=N\n"
      "                       Per-connection read deadline (slow-loris "
      "guard): close connections whose peer sends nothing, or stalls "
      "mid-frame, for this long (default 30000; 0 = never).\n"
      "  --score-shards=N     Split the item table into N row shards scored "
      "in parallel on the thread pool and merged exactly — bit-identical "
      "responses, parallel even for a single-request batch (default 1 = "
      "unsharded).\n"
      "  --session-shards=N   Hash-partition the session store into N "
      "shards, each with its own lock, LRU list, and slice of "
      "--max-sessions (default 1 = single shard).\n"
      "\n"
      "model architecture flags (train, evaluate, explain — must match "
      "between training and loading):\n"
      "  --backbone=NAME      Sequence encoder: gru or lstm (default "
      "gru).\n"
      "  --clusters=K         Number of item clusters (default: dataset "
      "truth, else 8).\n"
      "  --epsilon=X          Causal filter threshold on item-level "
      "weights.\n"
      "  --eta=X              Clusterer soft-assignment temperature.\n"
      "  --lambda=X           L1 sparsity weight on the cluster graph "
      "W^c.\n"
      "\n"
      "common flags (all subcommands):\n"
      "  --seed=N             RNG seed (generate: 0 keeps the spec's "
      "seed; models default to 7).\n"
      "  --threads=N          Worker threads for evaluation and large "
      "matmuls (default 1, or CAUSER_THREADS).\n"
      "  --arena=BOOL         Recycle autograd tape memory through "
      "per-step arenas (default on; results are identical either "
      "way).\n"
      "  --cpu-isa=NAME       Compute-primitive ISA tier: auto, scalar, "
      "avx2, avx512 (default auto = strongest the CPU supports; beats the "
      "CAUSER_CPU_ISA env var; unavailable tiers fall back; results are "
      "bit-identical across tiers — docs/KERNELS.md).\n"
      "  --metrics-out=FILE   Enable metrics and write a JSON registry "
      "snapshot on exit.\n"
      "  --trace-out=FILE     Enable tracing and write Chrome "
      "chrome://tracing JSON on exit.\n"
      "  --metrics-interval=SECONDS\n"
      "                       Enable metrics and dump the registry to "
      "stderr every SECONDS while running.\n"
      "  --fault-inject=SPEC  Arm fault-injection points, e.g. "
      "\"ckpt.rename_fail,optimizer.nan_grad@40\" (testing only; also "
      "honors the CAUSER_FAULT env var).\n"
      "  --help               Show this help.\n");
  return 0;
}

/// Turns the observability layer on for the duration of a subcommand when
/// any of --metrics-out / --trace-out / --metrics-interval is present
/// (otherwise every instrument stays a cheap early-return), periodically
/// dumps the registry, and writes the requested files on destruction.
class ObservabilitySession {
 public:
  explicit ObservabilitySession(const Flags& flags)
      : metrics_out_(flags.GetString("metrics-out")),
        trace_out_(flags.GetString("trace-out")),
        interval_seconds_(flags.GetDouble("metrics-interval", 0.0)) {
    if (!metrics_out_.empty() || interval_seconds_ > 0.0) {
      metrics::SetEnabled(true);
    }
    if (!trace_out_.empty()) trace::SetEnabled(true);
    if (interval_seconds_ > 0.0) {
      dumper_ = std::thread([this] { PeriodicDump(); });
    }
  }

  ~ObservabilitySession() {
    if (dumper_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        done_ = true;
      }
      cv_.notify_all();
      dumper_.join();
    }
    if (!metrics_out_.empty() || interval_seconds_ > 0.0) {
      if (!metrics_out_.empty() &&
          !metrics::WriteSnapshotJson(metrics_out_)) {
        std::fprintf(stderr, "failed to write metrics to %s\n",
                     metrics_out_.c_str());
      }
      metrics::SetEnabled(false);
    }
    if (!trace_out_.empty()) {
      trace::SetEnabled(false);
      if (!trace::WriteChromeTrace(trace_out_)) {
        std::fprintf(stderr, "failed to write trace to %s\n",
                     trace_out_.c_str());
      }
    }
  }

 private:
  void PeriodicDump() {
    std::unique_lock<std::mutex> lock(mu_);
    auto period = std::chrono::duration<double>(interval_seconds_);
    while (!cv_.wait_for(lock, period, [this] { return done_; })) {
      std::fputs(metrics::SnapshotText().c_str(), stderr);
    }
  }

  std::string metrics_out_;
  std::string trace_out_;
  double interval_seconds_ = 0.0;
  std::thread dumper_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
};

data::DatasetSpec SpecByName(const std::string& name, uint64_t seed) {
  data::DatasetSpec spec;
  if (name == "tiny") {
    spec = data::TinySpec();
  } else if (name == "epinions") {
    spec = data::SpecFor(data::PaperDataset::kEpinions);
  } else if (name == "foursquare") {
    spec = data::SpecFor(data::PaperDataset::kFoursquare);
  } else if (name == "patio") {
    spec = data::SpecFor(data::PaperDataset::kPatio);
  } else if (name == "baby") {
    spec = data::SpecFor(data::PaperDataset::kBaby);
  } else if (name == "video") {
    spec = data::SpecFor(data::PaperDataset::kVideo);
  } else {
    std::fprintf(stderr, "unknown spec '%s'\n", name.c_str());
    std::exit(2);
  }
  if (seed != 0) spec.seed = seed;
  return spec;
}

core::CauserConfig ConfigFromFlags(const Flags& flags,
                                   const data::Dataset& dataset) {
  auto backbone = flags.GetString("backbone", "gru") == "lstm"
                      ? core::Backbone::kLstm
                      : core::Backbone::kGru;
  core::CauserConfig config = core::DefaultCauserConfig(
      dataset, backbone, static_cast<uint64_t>(flags.GetInt("seed", 7)));
  config.num_clusters = flags.GetInt("clusters", config.num_clusters);
  config.epsilon =
      static_cast<float>(flags.GetDouble("epsilon", config.epsilon));
  config.eta = static_cast<float>(flags.GetDouble("eta", config.eta));
  config.lambda =
      static_cast<float>(flags.GetDouble("lambda", config.lambda));
  return config;
}

int CmdGenerate(const Flags& flags) {
  std::string out = flags.GetString("out");
  if (out.empty()) return Usage();
  auto spec = SpecByName(flags.GetString("spec", "tiny"),
                         static_cast<uint64_t>(flags.GetInt("seed", 0)));
  data::Dataset dataset = data::MakeDataset(spec);
  if (!data::SaveDataset(dataset, out)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  auto stats = data::ComputeStats(dataset);
  std::printf("%s: %d users, %d items, %d interactions -> %s\n",
              stats.name.c_str(), stats.num_users, stats.num_items,
              stats.num_interactions, out.c_str());
  return 0;
}

int CmdTrain(const Flags& flags) {
  std::string data_dir = flags.GetString("data");
  std::string model_out = flags.GetString("model-out");
  if (data_dir.empty() || model_out.empty()) return Usage();
  data::Dataset dataset;
  if (!data::LoadDataset(data_dir, &dataset)) {
    std::fprintf(stderr, "failed to load dataset from %s\n",
                 data_dir.c_str());
    return 1;
  }
  data::Split split = data::LeaveLastOut(dataset);
  core::CauserModel model(ConfigFromFlags(flags, dataset));
  models::TrainConfig tc;
  tc.max_epochs = flags.GetInt("epochs", 12);
  tc.patience = flags.GetInt("patience", 3);
  tc.verbose = flags.GetBool("verbose", false);
  std::string ckpt_dir = flags.GetString("checkpoint-dir");
  if (!ckpt_dir.empty()) {
    core::CheckpointOptions copts;
    copts.dir = ckpt_dir;
    copts.every = flags.GetInt("checkpoint-every", 1);
    copts.resume = flags.GetBool("resume", false);
    if (!core::InstallCheckpointHooks(copts, model, &tc)) return 1;
  } else if (flags.GetBool("resume", false)) {
    std::fprintf(stderr, "--resume requires --checkpoint-dir\n");
    return 2;
  }
  auto result = core::TrainCauser(model, split, tc);
  std::printf("trained %s for %d epochs, best validation NDCG@5 %.4f\n",
              model.name().c_str(), result.fit.epochs_run,
              result.fit.best_validation_ndcg);
  std::printf("learned cluster graph: %d edges, h(W^c) = %.2e\n",
              result.learned_cluster_graph.NumEdges(),
              result.final_acyclicity);
  if (!nn::SaveParameters(model, model_out)) {
    std::fprintf(stderr, "failed to write %s\n", model_out.c_str());
    return 1;
  }
  std::printf("weights -> %s\n", model_out.c_str());
  return 0;
}

int CmdEvaluate(const Flags& flags) {
  std::string data_dir = flags.GetString("data");
  std::string model_path = flags.GetString("model");
  if (data_dir.empty() || model_path.empty()) return Usage();
  data::Dataset dataset;
  if (!data::LoadDataset(data_dir, &dataset)) return 1;
  data::Split split = data::LeaveLastOut(dataset);
  core::CauserModel model(ConfigFromFlags(flags, dataset));
  if (!nn::LoadParameters(model, model_path)) {
    std::fprintf(stderr,
                 "failed to load %s (architecture flags must match "
                 "training)\n",
                 model_path.c_str());
    return 1;
  }
  model.OnParametersRestored();
  int z = flags.GetInt("z", 5);
  auto result = eval::Evaluate(models::MakeScorer(model), split.test, z);
  std::printf("test F1@%d %.4f   NDCG@%d %.4f   (%zu instances)\n", z,
              result.f1, z, result.ndcg, split.test.size());
  return 0;
}

int CmdExplain(const Flags& flags) {
  std::string data_dir = flags.GetString("data");
  std::string model_path = flags.GetString("model");
  if (data_dir.empty() || model_path.empty()) return Usage();
  data::Dataset dataset;
  if (!data::LoadDataset(data_dir, &dataset)) return 1;
  data::Split split = data::LeaveLastOut(dataset);
  core::CauserModel model(ConfigFromFlags(flags, dataset));
  if (!nn::LoadParameters(model, model_path)) return 1;
  model.OnParametersRestored();

  int user = flags.GetInt("user", 0);
  int top = flags.GetInt("top", 3);
  const data::EvalInstance* instance = nullptr;
  for (const auto& inst : split.test) {
    if (inst.user == user) {
      instance = &inst;
      break;
    }
  }
  if (instance == nullptr) {
    std::fprintf(stderr, "user %d has no test instance\n", user);
    return 1;
  }
  auto scores = model.ScoreAll(user, instance->history);
  auto ranked = eval::TopK(scores, top);
  std::printf("user %d history:\n", user);
  for (size_t t = 0; t < instance->history.size(); ++t) {
    std::printf("  step %zu:", t);
    for (int item : instance->history[t].items) std::printf(" %d", item);
    std::printf("\n");
  }
  for (int item : ranked) {
    auto why = model.ExplainScores(*instance, item, core::ExplainMode::kFull);
    int best = 0;
    for (size_t t = 1; t < why.size(); ++t)
      if (why[t] > why[best]) best = static_cast<int>(t);
    std::printf("recommend item %d (score %.3f) because of step %d\n", item,
                scores[item], best);
  }
  return 0;
}

int CmdServe(const Flags& flags) {
  std::string data_dir = flags.GetString("data");
  std::string model_path = flags.GetString("model");
  if (data_dir.empty() || model_path.empty()) return Usage();
  data::Dataset dataset;
  if (!data::LoadDataset(data_dir, &dataset)) return 1;
  data::Split split = data::LeaveLastOut(dataset);
  if (split.test.empty()) {
    std::fprintf(stderr, "test split is empty\n");
    return 1;
  }
  // The registry owns model loading: it accepts both plain weight files
  // and PR 4 training checkpoints (--reload-watch directories hold the
  // latter), validating before publishing so a bad file never replaces a
  // serving model.
  const core::CauserConfig model_config = ConfigFromFlags(flags, dataset);
  serve::ModelRegistry registry([model_config] {
    return std::make_unique<core::CauserModel>(model_config);
  });
  std::shared_ptr<const serve::ModelVersion> initial =
      registry.LoadAndPublish(model_path);
  if (initial == nullptr) {
    std::fprintf(stderr,
                 "failed to load %s (architecture flags must match "
                 "training)\n",
                 model_path.c_str());
    return 1;
  }

  serve::ServingConfig sc;
  sc.batch_max = flags.GetInt("batch-max", 32);
  sc.batch_wait_us = flags.GetInt("batch-wait-us", 200);
  sc.top_k = flags.GetInt("top", 10);
  sc.max_sessions = flags.GetInt("max-sessions", 0);
  const std::string quantize = flags.GetString("quantize", "none");
  if (quantize == "int8") {
    sc.quantize_int8 = true;
  } else if (quantize != "none") {
    std::fprintf(stderr, "unknown --quantize '%s' (expected none or int8)\n",
                 quantize.c_str());
    return 2;
  }
  sc.rerank_k = flags.GetInt("rerank-k", 2048);
  sc.score_shards = flags.GetInt("score-shards", 1);
  sc.session_shards = flags.GetInt("session-shards", 1);
  serve::ServingEngine engine(initial->model, sc);

  if (flags.Has("serve-port")) {
    const std::string watch_dir = flags.GetString("reload-watch");
    const double poll_seconds =
        std::max(50, flags.GetInt("reload-poll-ms", 500)) * 1e-3;

    // One reload at a time, whatever triggered it (SIGHUP on the serve
    // loop, kReload frames on reader threads, the watch-dir poll).
    // `last_loaded` suppresses re-loading a checkpoint the poll already
    // picked up; explicit triggers always reload.
    std::mutex reload_mu;
    std::string last_loaded = model_path;
    auto reload_now = [&]() -> bool {
      std::lock_guard<std::mutex> lock(reload_mu);
      std::string path = model_path;
      if (!watch_dir.empty()) {
        std::vector<std::string> checkpoints = core::ListCheckpoints(watch_dir);
        if (!checkpoints.empty()) path = checkpoints.back();
      }
      std::shared_ptr<const serve::ModelVersion> next =
          registry.LoadAndPublish(path);
      if (next == nullptr) {
        std::fprintf(stderr, "reload failed: could not load %s\n",
                     path.c_str());
        return false;
      }
      const uint64_t version = engine.Reload(next->model, next->source);
      if (version == 0) {
        std::fprintf(stderr, "reload failed: engine rejected %s\n",
                     path.c_str());
        return false;
      }
      last_loaded = path;
      // Parsed by the chaos CI job: keep the format.
      std::printf("reloaded model version %llu from %s\n",
                  static_cast<unsigned long long>(version), path.c_str());
      std::fflush(stdout);
      return true;
    };
    auto watch_has_news = [&]() -> bool {
      if (watch_dir.empty()) return false;
      std::vector<std::string> checkpoints = core::ListCheckpoints(watch_dir);
      if (checkpoints.empty()) return false;
      std::lock_guard<std::mutex> lock(reload_mu);
      return checkpoints.back() != last_loaded;
    };

    serve::ServerConfig server_config;
    server_config.port = flags.GetInt("serve-port", 0);
    server_config.deadline_ms = flags.GetInt("deadline-ms", 0);
    server_config.queue_depth = flags.GetInt("queue-depth", 256);
    server_config.workers = std::max(1, DefaultThreads());
    server_config.idle_timeout_ms = flags.GetInt("conn-idle-timeout-ms", 30000);
    server_config.on_reload = reload_now;
    serve::Server server(engine, server_config);
    if (!server.Start()) {
      std::fprintf(stderr, "failed to bind %s:%d\n",
                   server_config.host.c_str(), server_config.port);
      return 1;
    }
    net::InstallShutdownHandler();
    net::InstallReloadHandler();
    // Parsed by scripts (CI smoke, loadgen wrappers): keep the format.
    std::printf(
        "serving on %s:%d (workers %d, queue-depth %d, deadline %d ms)\n",
        server_config.host.c_str(), server.port(), server_config.workers,
        server_config.queue_depth, server_config.deadline_ms);
    std::fflush(stdout);
    for (;;) {
      const net::SignalKind kind = net::WaitForSignal(poll_seconds);
      if (kind == net::SignalKind::kShutdown) break;
      if (kind == net::SignalKind::kReload || watch_has_news()) reload_now();
    }
    std::printf("shutdown requested, draining\n");
    std::fflush(stdout);
    server.Shutdown();
    engine.Stop();
    std::printf("drained cleanly, %d sessions cached\n",
                engine.store().size());
    return 0;
  }

  // Each test instance becomes one request: the history minus its last
  // step bootstraps the session on first sight, the last step is the
  // "live" interaction appended before scoring. Replay passes keep
  // appending, exercising the incremental advance path.
  struct Replayed {
    int user;
    std::vector<data::Step> bootstrap;
    data::Step append;
  };
  std::vector<Replayed> requests;
  requests.reserve(split.test.size());
  for (const auto& inst : split.test) {
    if (inst.history.empty()) continue;
    Replayed r;
    r.user = inst.user;
    r.bootstrap.assign(inst.history.begin(), inst.history.end() - 1);
    r.append = inst.history.back();
    requests.push_back(std::move(r));
  }
  const int passes = std::max(1, flags.GetInt("serve-replay", 1));
  const long total =
      static_cast<long>(passes) * static_cast<long>(requests.size());
  const int clients = std::max(1, DefaultThreads());

  std::atomic<long> next{0};
  std::vector<std::vector<double>> latencies(clients);
  Stopwatch wall;
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      for (long i = next.fetch_add(1); i < total; i = next.fetch_add(1)) {
        const Replayed& r = requests[i % requests.size()];
        serve::Request request;
        request.user = r.user;
        request.append = &r.append;
        request.bootstrap = &r.bootstrap;
        Stopwatch watch;
        serve::Response response = engine.Handle(request);
        latencies[c].push_back(watch.ElapsedSeconds());
        if (response.items.empty()) {
          std::fprintf(stderr, "empty response for user %d\n", r.user);
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const double wall_seconds = wall.ElapsedSeconds();

  std::vector<double> all;
  for (const auto& local : latencies)
    all.insert(all.end(), local.begin(), local.end());
  std::sort(all.begin(), all.end());
  auto percentile = [&](double q) {
    if (all.empty()) return 0.0;
    size_t idx = static_cast<size_t>(q * (all.size() - 1));
    return all[idx];
  };
  std::printf(
      "served %ld requests (%d pass(es) x %zu instances, %d client "
      "threads, batch-max %d, batch-wait %dus)\n",
      total, passes, requests.size(), clients, sc.batch_max,
      sc.batch_wait_us);
  std::printf("p50 %.3f ms   p99 %.3f ms   %.0f req/s   %d sessions cached\n",
              percentile(0.50) * 1e3, percentile(0.99) * 1e3,
              wall_seconds > 0 ? total / wall_seconds : 0.0,
              engine.store().size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  causer::Flags flags = causer::Flags::Parse(argc - 1, argv + 1);
  if (command == "--help" || command == "help" || flags.GetBool("help", false))
    return PrintHelp();
  // --threads=N parallelizes evaluation and the large matmul kernels
  // (default 1 = the bit-exact sequential paths).
  causer::ConfigureThreadsFromFlags(flags);
  // --arena=false falls back to per-op heap allocation for the autograd
  // tape — the A/B knob behind BENCH_kernels.json's steps/sec comparison.
  causer::tensor::SetArenaEnabled(flags.GetBool("arena", true));
  // --cpu-isa pins the compute-primitive tier (precedence: this flag >
  // CAUSER_CPU_ISA > cpuid); installed before any kernel runs so the
  // one-time dispatch resolution sees it.
  std::string cpu_isa = flags.GetString("cpu-isa");
  if (!cpu_isa.empty() && !causer::cpu::SetIsaOverride(cpu_isa)) {
    std::fprintf(stderr,
                 "unknown --cpu-isa '%s' (expected auto, scalar, avx2 or "
                 "avx512)\n",
                 cpu_isa.c_str());
    return 2;
  }
  // Fault injection (testing only): CAUSER_FAULT env var, then the flag.
  causer::fault::ArmFromEnvironment();
  std::string fault_spec = flags.GetString("fault-inject");
  if (!fault_spec.empty() && !causer::fault::ArmFromSpec(fault_spec)) {
    std::fprintf(stderr, "malformed --fault-inject spec '%s'\n",
                 fault_spec.c_str());
    return 2;
  }
  ObservabilitySession observability(flags);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "train") return CmdTrain(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "explain") return CmdExplain(flags);
  if (command == "serve") return CmdServe(flags);
  return Usage();
}
