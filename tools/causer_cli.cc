// causer_cli: command-line front end to the library.
//
// Subcommands:
//   generate  --spec=<tiny|epinions|foursquare|patio|baby|video>
//             --out=<dir> [--seed=N]
//     Generates a synthetic causal dataset and saves it as TSV.
//
//   train     --data=<dir> --model-out=<file>
//             [--backbone=gru|lstm] [--epochs=N] [--clusters=K]
//             [--epsilon=X] [--eta=X] [--lambda=X] [--seed=N]
//     Trains Causer on a saved dataset and writes the weights.
//
//   evaluate  --data=<dir> --model=<file> [--backbone=...] [--clusters=K]
//             [--epsilon=X] [--eta=X] [--z=5]
//     Evaluates a trained model on the leave-last-out test split.
//
//   explain   --data=<dir> --model=<file> --user=U [--top=3] [...]
//     Prints the user's recommendation with per-step causal explanation.
//
// Model files carry only weights; the architecture flags at evaluate /
// explain time must match those used at training time.
//
// All subcommands accept --threads=N (default 1, or the CAUSER_THREADS
// environment variable) to parallelize evaluation and large matmuls.

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "common/thread_pool.h"
#include "core/explainer.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "data/io.h"
#include "data/split.h"
#include "data/stats.h"
#include "eval/metrics.h"
#include "nn/serialization.h"

namespace {

using namespace causer;

int Usage() {
  std::fprintf(stderr,
               "usage: causer_cli <generate|train|evaluate|explain> "
               "[--flags]\n(see the header of tools/causer_cli.cc)\n");
  return 2;
}

data::DatasetSpec SpecByName(const std::string& name, uint64_t seed) {
  data::DatasetSpec spec;
  if (name == "tiny") {
    spec = data::TinySpec();
  } else if (name == "epinions") {
    spec = data::SpecFor(data::PaperDataset::kEpinions);
  } else if (name == "foursquare") {
    spec = data::SpecFor(data::PaperDataset::kFoursquare);
  } else if (name == "patio") {
    spec = data::SpecFor(data::PaperDataset::kPatio);
  } else if (name == "baby") {
    spec = data::SpecFor(data::PaperDataset::kBaby);
  } else if (name == "video") {
    spec = data::SpecFor(data::PaperDataset::kVideo);
  } else {
    std::fprintf(stderr, "unknown spec '%s'\n", name.c_str());
    std::exit(2);
  }
  if (seed != 0) spec.seed = seed;
  return spec;
}

core::CauserConfig ConfigFromFlags(const Flags& flags,
                                   const data::Dataset& dataset) {
  auto backbone = flags.GetString("backbone", "gru") == "lstm"
                      ? core::Backbone::kLstm
                      : core::Backbone::kGru;
  core::CauserConfig config = core::DefaultCauserConfig(
      dataset, backbone, static_cast<uint64_t>(flags.GetInt("seed", 7)));
  config.num_clusters = flags.GetInt("clusters", config.num_clusters);
  config.epsilon =
      static_cast<float>(flags.GetDouble("epsilon", config.epsilon));
  config.eta = static_cast<float>(flags.GetDouble("eta", config.eta));
  config.lambda =
      static_cast<float>(flags.GetDouble("lambda", config.lambda));
  return config;
}

int CmdGenerate(const Flags& flags) {
  std::string out = flags.GetString("out");
  if (out.empty()) return Usage();
  auto spec = SpecByName(flags.GetString("spec", "tiny"),
                         static_cast<uint64_t>(flags.GetInt("seed", 0)));
  data::Dataset dataset = data::MakeDataset(spec);
  if (!data::SaveDataset(dataset, out)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  auto stats = data::ComputeStats(dataset);
  std::printf("%s: %d users, %d items, %d interactions -> %s\n",
              stats.name.c_str(), stats.num_users, stats.num_items,
              stats.num_interactions, out.c_str());
  return 0;
}

int CmdTrain(const Flags& flags) {
  std::string data_dir = flags.GetString("data");
  std::string model_out = flags.GetString("model-out");
  if (data_dir.empty() || model_out.empty()) return Usage();
  data::Dataset dataset;
  if (!data::LoadDataset(data_dir, &dataset)) {
    std::fprintf(stderr, "failed to load dataset from %s\n",
                 data_dir.c_str());
    return 1;
  }
  data::Split split = data::LeaveLastOut(dataset);
  core::CauserModel model(ConfigFromFlags(flags, dataset));
  models::TrainConfig tc;
  tc.max_epochs = flags.GetInt("epochs", 12);
  tc.patience = flags.GetInt("patience", 3);
  tc.verbose = flags.GetBool("verbose", false);
  auto result = core::TrainCauser(model, split, tc);
  std::printf("trained %s for %d epochs, best validation NDCG@5 %.4f\n",
              model.name().c_str(), result.fit.epochs_run,
              result.fit.best_validation_ndcg);
  std::printf("learned cluster graph: %d edges, h(W^c) = %.2e\n",
              result.learned_cluster_graph.NumEdges(),
              result.final_acyclicity);
  if (!nn::SaveParameters(model, model_out)) {
    std::fprintf(stderr, "failed to write %s\n", model_out.c_str());
    return 1;
  }
  std::printf("weights -> %s\n", model_out.c_str());
  return 0;
}

int CmdEvaluate(const Flags& flags) {
  std::string data_dir = flags.GetString("data");
  std::string model_path = flags.GetString("model");
  if (data_dir.empty() || model_path.empty()) return Usage();
  data::Dataset dataset;
  if (!data::LoadDataset(data_dir, &dataset)) return 1;
  data::Split split = data::LeaveLastOut(dataset);
  core::CauserModel model(ConfigFromFlags(flags, dataset));
  if (!nn::LoadParameters(model, model_path)) {
    std::fprintf(stderr,
                 "failed to load %s (architecture flags must match "
                 "training)\n",
                 model_path.c_str());
    return 1;
  }
  model.OnParametersRestored();
  int z = flags.GetInt("z", 5);
  auto result = eval::Evaluate(models::MakeScorer(model), split.test, z);
  std::printf("test F1@%d %.4f   NDCG@%d %.4f   (%zu instances)\n", z,
              result.f1, z, result.ndcg, split.test.size());
  return 0;
}

int CmdExplain(const Flags& flags) {
  std::string data_dir = flags.GetString("data");
  std::string model_path = flags.GetString("model");
  if (data_dir.empty() || model_path.empty()) return Usage();
  data::Dataset dataset;
  if (!data::LoadDataset(data_dir, &dataset)) return 1;
  data::Split split = data::LeaveLastOut(dataset);
  core::CauserModel model(ConfigFromFlags(flags, dataset));
  if (!nn::LoadParameters(model, model_path)) return 1;
  model.OnParametersRestored();

  int user = flags.GetInt("user", 0);
  int top = flags.GetInt("top", 3);
  const data::EvalInstance* instance = nullptr;
  for (const auto& inst : split.test) {
    if (inst.user == user) {
      instance = &inst;
      break;
    }
  }
  if (instance == nullptr) {
    std::fprintf(stderr, "user %d has no test instance\n", user);
    return 1;
  }
  auto scores = model.ScoreAll(user, instance->history);
  auto ranked = eval::TopK(scores, top);
  std::printf("user %d history:\n", user);
  for (size_t t = 0; t < instance->history.size(); ++t) {
    std::printf("  step %zu:", t);
    for (int item : instance->history[t].items) std::printf(" %d", item);
    std::printf("\n");
  }
  for (int item : ranked) {
    auto why = model.ExplainScores(*instance, item, core::ExplainMode::kFull);
    int best = 0;
    for (size_t t = 1; t < why.size(); ++t)
      if (why[t] > why[best]) best = static_cast<int>(t);
    std::printf("recommend item %d (score %.3f) because of step %d\n", item,
                scores[item], best);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  causer::Flags flags = causer::Flags::Parse(argc - 1, argv + 1);
  // --threads=N parallelizes evaluation and the large matmul kernels
  // (default 1 = the bit-exact sequential paths).
  causer::ConfigureThreadsFromFlags(flags);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "train") return CmdTrain(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "explain") return CmdExplain(flags);
  return Usage();
}
